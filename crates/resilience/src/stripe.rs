//! Stripe geometry, per-block integrity checks and the per-file stripe map.
//!
//! Every hidden file's content blocks are grouped into stripes of `k`
//! consecutive blocks; each stripe gets `m` parity blocks placed like any
//! other hidden block. The [`StripeMap`] records, per data block, two
//! integrity checks over the *plaintext* data field, plus the location and
//! checks of every parity block:
//!
//! * a 16-byte truncated HMAC-SHA-256 — the authoritative check the scrub
//!   pass verifies (forging it requires the MAC key);
//! * an 8-byte keyed multiply-xor hash — the cheap check the read path
//!   verifies on every block so that silent corruption is caught inline
//!   without paying a second SHA-256 pass per read (HMAC on the read path
//!   would cost more than the AES decrypt itself and blow the striping
//!   overhead budget).
//!
//! The map is persisted as the content of a *shadow hidden file* — sealed and
//! scattered like every other hidden file — so it never appears in plaintext
//! on disk.

use stegfs_crypto::{HmacSha256, Key256};

use crate::error::ResilienceError;

/// Magic prefix of an encoded stripe map.
const MAP_MAGIC: [u8; 8] = *b"RSMAP001";

/// Striping parameters: `k` data blocks + `m` parity blocks per stripe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StripeConfig {
    /// Data blocks per stripe.
    pub k: usize,
    /// Parity blocks per stripe.
    pub m: usize,
}

impl StripeConfig {
    /// Create a configuration, validating the code shape.
    pub fn new(k: usize, m: usize) -> Self {
        assert!(k >= 1 && m >= 1 && k + m <= 256, "invalid stripe shape");
        Self { k, m }
    }

    /// Stripe index covering data block `index`.
    pub fn stripe_of(&self, index: u64) -> u64 {
        index / self.k as u64
    }

    /// Number of stripes needed for `num_data` data blocks.
    pub fn num_stripes(&self, num_data: u64) -> u64 {
        num_data.div_ceil(self.k as u64)
    }
}

/// The pair of integrity checks kept for one block's plaintext.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BlockCheck {
    /// Keyed multiply-xor hash; verified on every read.
    pub fast: u64,
    /// Truncated HMAC-SHA-256; verified by scrub.
    pub mac: [u8; 16],
}

impl BlockCheck {
    pub(crate) const ENCODED_LEN: usize = 8 + 16;

    pub(crate) fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.fast.to_le_bytes());
        out.extend_from_slice(&self.mac);
    }

    pub(crate) fn decode(buf: &[u8]) -> Self {
        let fast = u64::from_le_bytes(buf[..8].try_into().unwrap());
        let mut mac = [0u8; 16];
        mac.copy_from_slice(&buf[8..24]);
        Self { fast, mac }
    }
}

/// Location and checks of one parity block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ParityEntry {
    /// Physical block holding the sealed parity shard.
    pub location: u64,
    /// Checks over the parity plaintext.
    pub check: BlockCheck,
}

impl ParityEntry {
    const ENCODED_LEN: usize = 8 + BlockCheck::ENCODED_LEN;
}

/// Keys for computing both block checks, derived once per file.
pub struct ChecksumKeys {
    hmac: HmacSha256,
    s0: u64,
    s1: u64,
}

impl ChecksumKeys {
    /// Derive the check keys from a file key (the content key for data and
    /// parity blocks).
    pub fn derive(key: &Key256) -> Self {
        let mac_key = key.derive("resilience:mac");
        let fast_key = key.derive("resilience:fast");
        let fb = fast_key.as_bytes();
        Self {
            hmac: HmacSha256::new(mac_key.as_bytes()),
            s0: u64::from_le_bytes(fb[..8].try_into().unwrap()) | 1,
            s1: u64::from_le_bytes(fb[8..16].try_into().unwrap()) | 1,
        }
    }

    /// The authoritative 16-byte truncated HMAC of `data`.
    pub fn mac16(&self, data: &[u8]) -> [u8; 16] {
        let full = self.hmac.mac_with(data);
        let mut out = [0u8; 16];
        out.copy_from_slice(&full[..16]);
        out
    }

    /// The cheap keyed hash of `data`: a wyhash-style multiply-xor fold over
    /// 8-byte lanes. Not collision-resistant against an adversary who knows
    /// the key — that is what [`ChecksumKeys::mac16`] is for — but any bit
    /// flip or zeroed block changes it with overwhelming probability, which
    /// is the failure model of cover-traffic overwrites.
    pub fn fast(&self, data: &[u8]) -> u64 {
        const M: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut h = self.s0 ^ (data.len() as u64).wrapping_mul(M);
        let mut chunks = data.chunks_exact(8);
        for lane in &mut chunks {
            let v = u64::from_le_bytes(lane.try_into().unwrap());
            h = (h ^ v).wrapping_mul(M).rotate_left(29) ^ self.s1;
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            let v = u64::from_le_bytes(tail);
            h = (h ^ v).wrapping_mul(M).rotate_left(29) ^ self.s1;
        }
        // Final avalanche.
        h ^= h >> 32;
        h = h.wrapping_mul(M);
        h ^ (h >> 29)
    }

    /// Both checks of `data` at once.
    pub fn check(&self, data: &[u8]) -> BlockCheck {
        BlockCheck {
            fast: self.fast(data),
            mac: self.mac16(data),
        }
    }
}

/// The per-file stripe map: data-block checks plus parity locations/checks.
///
/// Its encoded form has a fixed length for a given (k, m, number of data
/// blocks), so the shadow file holding it can be rewritten in place.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StripeMap {
    cfg: StripeConfig,
    data: Vec<BlockCheck>,
    parity: Vec<ParityEntry>,
}

impl StripeMap {
    /// Create an all-zero map for a file of `num_data` data blocks.
    pub fn new(cfg: StripeConfig, num_data: u64) -> Self {
        let stripes = cfg.num_stripes(num_data);
        Self {
            cfg,
            data: vec![BlockCheck::default(); num_data as usize],
            parity: vec![ParityEntry::default(); (stripes * cfg.m as u64) as usize],
        }
    }

    /// The striping parameters.
    pub fn config(&self) -> StripeConfig {
        self.cfg
    }

    /// Number of data blocks covered.
    pub fn num_data(&self) -> u64 {
        self.data.len() as u64
    }

    /// Number of stripes.
    pub fn num_stripes(&self) -> u64 {
        self.cfg.num_stripes(self.num_data())
    }

    /// Check of data block `index`.
    pub fn data_check(&self, index: u64) -> &BlockCheck {
        &self.data[index as usize]
    }

    /// Record the check of data block `index`.
    pub fn set_data_check(&mut self, index: u64, check: BlockCheck) {
        self.data[index as usize] = check;
    }

    /// Parity entry `row` of `stripe`.
    pub fn parity_entry(&self, stripe: u64, row: usize) -> &ParityEntry {
        &self.parity[stripe as usize * self.cfg.m + row]
    }

    /// Record parity entry `row` of `stripe`.
    pub fn set_parity_entry(&mut self, stripe: u64, row: usize, entry: ParityEntry) {
        self.parity[stripe as usize * self.cfg.m + row] = entry;
    }

    /// The data-block indices belonging to `stripe` (the final stripe may be
    /// shorter than `k`).
    pub fn stripe_data_range(&self, stripe: u64) -> core::ops::Range<u64> {
        let start = stripe * self.cfg.k as u64;
        let end = (start + self.cfg.k as u64).min(self.num_data());
        start..end
    }

    /// All parity locations in the map, in (stripe, row) order.
    pub fn parity_locations(&self) -> Vec<u64> {
        self.parity.iter().map(|e| e.location).collect()
    }

    /// Encoded length of a map for `num_data` data blocks under `cfg`.
    pub fn encoded_len(cfg: StripeConfig, num_data: u64) -> usize {
        let stripes = cfg.num_stripes(num_data);
        16 + num_data as usize * BlockCheck::ENCODED_LEN
            + (stripes * cfg.m as u64) as usize * ParityEntry::ENCODED_LEN
    }

    /// Serialize; the output length is [`StripeMap::encoded_len`].
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(Self::encoded_len(self.cfg, self.num_data()));
        out.extend_from_slice(&MAP_MAGIC);
        out.extend_from_slice(&(self.cfg.k as u16).to_le_bytes());
        out.extend_from_slice(&(self.cfg.m as u16).to_le_bytes());
        out.extend_from_slice(&(self.data.len() as u32).to_le_bytes());
        for c in &self.data {
            c.encode_into(&mut out);
        }
        for e in &self.parity {
            out.extend_from_slice(&e.location.to_le_bytes());
            e.check.encode_into(&mut out);
        }
        out
    }

    /// Reconstruct a map from [`StripeMap::encode`] output, validating the
    /// magic, shape and length.
    pub fn decode(buf: &[u8]) -> Result<Self, ResilienceError> {
        if buf.len() < 16 || buf[..8] != MAP_MAGIC {
            return Err(ResilienceError::Corrupt("bad stripe map magic".to_string()));
        }
        let k = u16::from_le_bytes(buf[8..10].try_into().unwrap()) as usize;
        let m = u16::from_le_bytes(buf[10..12].try_into().unwrap()) as usize;
        if k < 1 || m < 1 || k + m > 256 {
            return Err(ResilienceError::Corrupt(format!(
                "implausible stripe shape k={k} m={m}"
            )));
        }
        let cfg = StripeConfig { k, m };
        let num_data = u32::from_le_bytes(buf[12..16].try_into().unwrap()) as u64;
        let need = Self::encoded_len(cfg, num_data);
        if buf.len() < need {
            return Err(ResilienceError::Corrupt(format!(
                "stripe map truncated: {} < {need} bytes",
                buf.len()
            )));
        }
        let mut data = Vec::with_capacity(num_data as usize);
        let mut off = 16;
        for _ in 0..num_data {
            data.push(BlockCheck::decode(&buf[off..off + BlockCheck::ENCODED_LEN]));
            off += BlockCheck::ENCODED_LEN;
        }
        let entries = cfg.num_stripes(num_data) * m as u64;
        let mut parity = Vec::with_capacity(entries as usize);
        for _ in 0..entries {
            let location = u64::from_le_bytes(buf[off..off + 8].try_into().unwrap());
            let check = BlockCheck::decode(&buf[off + 8..off + ParityEntry::ENCODED_LEN]);
            parity.push(ParityEntry { location, check });
            off += ParityEntry::ENCODED_LEN;
        }
        Ok(Self { cfg, data, parity })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys() -> ChecksumKeys {
        ChecksumKeys::derive(&Key256::from_passphrase("stripe-test"))
    }

    #[test]
    fn stripe_geometry() {
        let cfg = StripeConfig::new(4, 2);
        assert_eq!(cfg.stripe_of(0), 0);
        assert_eq!(cfg.stripe_of(3), 0);
        assert_eq!(cfg.stripe_of(4), 1);
        assert_eq!(cfg.num_stripes(0), 0);
        assert_eq!(cfg.num_stripes(1), 1);
        assert_eq!(cfg.num_stripes(4), 1);
        assert_eq!(cfg.num_stripes(5), 2);
    }

    #[test]
    fn fast_hash_detects_corruption() {
        let k = keys();
        let data = vec![0x5au8; 4080];
        let h = k.fast(&data);
        assert_eq!(h, k.fast(&data), "deterministic");

        let mut flipped = data.clone();
        flipped[1000] ^= 0x01;
        assert_ne!(h, k.fast(&flipped), "single bit flip detected");

        let zeroed = vec![0u8; 4080];
        assert_ne!(h, k.fast(&zeroed), "zeroing detected");
        assert_ne!(k.fast(&data[..100]), k.fast(&data[..101]), "length bound");
    }

    #[test]
    fn fast_hash_is_keyed() {
        let a = ChecksumKeys::derive(&Key256::from_passphrase("a"));
        let b = ChecksumKeys::derive(&Key256::from_passphrase("b"));
        let data = vec![7u8; 256];
        assert_ne!(a.fast(&data), b.fast(&data));
        assert_ne!(a.mac16(&data), b.mac16(&data));
    }

    #[test]
    fn mac_matches_plain_hmac_truncation() {
        let master = Key256::from_passphrase("x");
        let k = ChecksumKeys::derive(&master);
        let data = b"payload bytes";
        let expect = HmacSha256::mac(master.derive("resilience:mac").as_bytes(), data);
        assert_eq!(k.mac16(data), expect[..16]);
    }

    #[test]
    fn check_combines_both() {
        let k = keys();
        let data = vec![3u8; 64];
        let c = k.check(&data);
        assert_eq!(c.fast, k.fast(&data));
        assert_eq!(c.mac, k.mac16(&data));
    }

    #[test]
    fn map_roundtrip_and_fixed_length() {
        let cfg = StripeConfig::new(4, 2);
        let mut map = StripeMap::new(cfg, 10);
        assert_eq!(map.num_stripes(), 3);
        let k = keys();
        for i in 0..10u64 {
            map.set_data_check(i, k.check(&[i as u8; 32]));
        }
        for s in 0..3u64 {
            for r in 0..2 {
                map.set_parity_entry(
                    s,
                    r,
                    ParityEntry {
                        location: 100 + s * 10 + r as u64,
                        check: k.check(&[0xF0 ^ s as u8; 32]),
                    },
                );
            }
        }
        let bytes = map.encode();
        assert_eq!(bytes.len(), StripeMap::encoded_len(cfg, 10));
        let decoded = StripeMap::decode(&bytes).unwrap();
        assert_eq!(decoded, map);
        // A fresh map of the same shape encodes to the same length, so the
        // shadow file can be rewritten in place.
        assert_eq!(StripeMap::new(cfg, 10).encode().len(), bytes.len());
    }

    #[test]
    fn short_final_stripe_range() {
        let map = StripeMap::new(StripeConfig::new(4, 1), 6);
        assert_eq!(map.stripe_data_range(0), 0..4);
        assert_eq!(map.stripe_data_range(1), 4..6);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(StripeMap::decode(b"short").is_err());
        let mut bytes = StripeMap::new(StripeConfig::new(4, 2), 5).encode();
        bytes[0] ^= 0xff;
        assert!(StripeMap::decode(&bytes).is_err());
        let bytes = StripeMap::new(StripeConfig::new(4, 2), 5).encode();
        assert!(StripeMap::decode(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn parity_locations_in_order() {
        let mut map = StripeMap::new(StripeConfig::new(2, 2), 4);
        for s in 0..2u64 {
            for r in 0..2 {
                map.set_parity_entry(
                    s,
                    r,
                    ParityEntry {
                        location: s * 2 + r as u64,
                        check: BlockCheck::default(),
                    },
                );
            }
        }
        assert_eq!(map.parity_locations(), vec![0, 1, 2, 3]);
    }
}
