//! Scrub reporting and shared resilience counters.

use std::sync::atomic::{AtomicU64, Ordering};

use stegfs_blockdev::BlockId;

/// The result of one [`crate::ResilientStore::scrub`] sweep.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Blocks whose MACs were verified (data + parity).
    pub blocks_checked: u64,
    /// Stripes found with at least one corrupt block.
    pub degraded_stripes: u64,
    /// Blocks reconstructed and re-written to fresh locations.
    pub blocks_repaired: u64,
    /// Stripes that had lost more than `m` blocks and could not be repaired.
    pub unrecoverable_stripes: u64,
    /// Volume-anchor replicas rewritten (stale or corrupt).
    pub anchor_replicas_repaired: u64,
    /// Physical locations where corruption was detected, in sweep order —
    /// matched by tests against a fault-injecting device's bookkeeping.
    pub detected: Vec<BlockId>,
}

impl ScrubReport {
    /// Whether the sweep found the volume fully intact.
    pub fn is_clean(&self) -> bool {
        self.degraded_stripes == 0
            && self.unrecoverable_stripes == 0
            && self.anchor_replicas_repaired == 0
    }

    /// Whether every detected fault was repaired.
    pub fn fully_repaired(&self) -> bool {
        self.unrecoverable_stripes == 0
    }
}

/// The result of the journal-recovery pass run by
/// [`crate::ResilientStore::open`] before the volume is handed out.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Valid intent records found in the journal slots.
    pub intents_found: u64,
    /// Intents skipped as certainly complete (superseded by a higher op id
    /// on the same path, or already committed).
    pub intents_stale: u64,
    /// Interrupted updates completed forward (some new image had landed).
    pub rolled_forward: u64,
    /// Interrupted updates undone (no new image had landed) and interrupted
    /// creates removed.
    pub rolled_back: u64,
    /// Intents whose stripe was beyond parity tolerance; affected reads will
    /// report the damage.
    pub unrecoverable: u64,
}

impl RecoveryReport {
    /// Whether the journal was empty — a clean shutdown.
    pub fn is_clean(&self) -> bool {
        self.intents_found == 0
    }

    /// Intents that required recovery action.
    pub fn recovered(&self) -> u64 {
        self.rolled_forward + self.rolled_back
    }
}

/// Point-in-time snapshot of a store's cumulative resilience counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResilienceStats {
    /// Content-block reads whose fast check was verified.
    pub reads_verified: u64,
    /// Read-path fast-check failures (each triggers a stripe repair).
    pub read_check_failures: u64,
    /// Blocks MAC-verified by scrub sweeps.
    pub blocks_checked: u64,
    /// Blocks reconstructed from parity.
    pub blocks_repaired: u64,
    /// Stripes observed degraded.
    pub degraded_stripes: u64,
    /// Stripes found beyond parity tolerance.
    pub unrecoverable_stripes: u64,
    /// Anchor replicas rewritten during quorum reads.
    pub anchor_repairs: u64,
    /// Completed scrub sweeps.
    pub scrubs: u64,
    /// Intent records journaled ahead of multi-block mutations.
    pub intents_journaled: u64,
    /// Intents rolled forward or back by open-time recovery.
    pub intents_recovered: u64,
}

/// Interior-mutable mirror of [`ResilienceStats`]: every counter is a relaxed
/// [`AtomicU64`], so concurrent readers bump them without a lock and
/// [`SharedResilienceStats::snapshot`] materialises a plain value for
/// reporting — the same pattern as the oblivious store's shared stats.
///
/// Relaxed ordering suffices: these are monotone tallies, never used for
/// synchronisation, and a snapshot at quiescence is exact.
#[derive(Debug, Default)]
pub struct SharedResilienceStats {
    reads_verified: AtomicU64,
    read_check_failures: AtomicU64,
    blocks_checked: AtomicU64,
    blocks_repaired: AtomicU64,
    degraded_stripes: AtomicU64,
    unrecoverable_stripes: AtomicU64,
    anchor_repairs: AtomicU64,
    scrubs: AtomicU64,
    intents_journaled: AtomicU64,
    intents_recovered: AtomicU64,
}

impl SharedResilienceStats {
    /// One content-block read verified on the fast path.
    pub fn count_read_verified(&self) {
        self.reads_verified.fetch_add(1, Ordering::Relaxed);
    }

    /// One read-path fast-check failure.
    pub fn count_read_check_failure(&self) {
        self.read_check_failures.fetch_add(1, Ordering::Relaxed);
    }

    /// `n` blocks MAC-verified by a scrub sweep.
    pub fn add_blocks_checked(&self, n: u64) {
        self.blocks_checked.fetch_add(n, Ordering::Relaxed);
    }

    /// `n` blocks reconstructed from parity.
    pub fn add_blocks_repaired(&self, n: u64) {
        self.blocks_repaired.fetch_add(n, Ordering::Relaxed);
    }

    /// `n` stripes observed degraded.
    pub fn add_degraded_stripes(&self, n: u64) {
        self.degraded_stripes.fetch_add(n, Ordering::Relaxed);
    }

    /// `n` stripes found unrecoverable.
    pub fn add_unrecoverable_stripes(&self, n: u64) {
        self.unrecoverable_stripes.fetch_add(n, Ordering::Relaxed);
    }

    /// `n` anchor replicas repaired in place.
    pub fn add_anchor_repairs(&self, n: u64) {
        self.anchor_repairs.fetch_add(n, Ordering::Relaxed);
    }

    /// One scrub sweep completed.
    pub fn count_scrub(&self) {
        self.scrubs.fetch_add(1, Ordering::Relaxed);
    }

    /// One intent record journaled ahead of a mutation.
    pub fn count_intent_journaled(&self) {
        self.intents_journaled.fetch_add(1, Ordering::Relaxed);
    }

    /// `n` intents rolled forward or back by open-time recovery.
    pub fn add_intents_recovered(&self, n: u64) {
        self.intents_recovered.fetch_add(n, Ordering::Relaxed);
    }

    /// Materialise a plain snapshot of all counters.
    pub fn snapshot(&self) -> ResilienceStats {
        ResilienceStats {
            reads_verified: self.reads_verified.load(Ordering::Relaxed),
            read_check_failures: self.read_check_failures.load(Ordering::Relaxed),
            blocks_checked: self.blocks_checked.load(Ordering::Relaxed),
            blocks_repaired: self.blocks_repaired.load(Ordering::Relaxed),
            degraded_stripes: self.degraded_stripes.load(Ordering::Relaxed),
            unrecoverable_stripes: self.unrecoverable_stripes.load(Ordering::Relaxed),
            anchor_repairs: self.anchor_repairs.load(Ordering::Relaxed),
            scrubs: self.scrubs.load(Ordering::Relaxed),
            intents_journaled: self.intents_journaled.load(Ordering::Relaxed),
            intents_recovered: self.intents_recovered.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_into_snapshot() {
        let stats = SharedResilienceStats::default();
        stats.count_read_verified();
        stats.count_read_verified();
        stats.count_read_check_failure();
        stats.add_blocks_checked(10);
        stats.add_blocks_repaired(3);
        stats.add_degraded_stripes(2);
        stats.add_unrecoverable_stripes(1);
        stats.add_anchor_repairs(1);
        stats.count_scrub();
        stats.count_intent_journaled();
        stats.add_intents_recovered(2);
        let snap = stats.snapshot();
        assert_eq!(snap.reads_verified, 2);
        assert_eq!(snap.read_check_failures, 1);
        assert_eq!(snap.blocks_checked, 10);
        assert_eq!(snap.blocks_repaired, 3);
        assert_eq!(snap.degraded_stripes, 2);
        assert_eq!(snap.unrecoverable_stripes, 1);
        assert_eq!(snap.anchor_repairs, 1);
        assert_eq!(snap.scrubs, 1);
        assert_eq!(snap.intents_journaled, 1);
        assert_eq!(snap.intents_recovered, 2);
    }

    #[test]
    fn report_classification() {
        let clean = ScrubReport::default();
        assert!(clean.is_clean());
        assert!(clean.fully_repaired());

        let degraded = ScrubReport {
            blocks_checked: 100,
            degraded_stripes: 1,
            blocks_repaired: 1,
            detected: vec![42],
            ..Default::default()
        };
        assert!(!degraded.is_clean());
        assert!(degraded.fully_repaired());

        let lost = ScrubReport {
            unrecoverable_stripes: 1,
            ..Default::default()
        };
        assert!(!lost.fully_repaired());
    }
}
