//! The resilient store: erasure-coded hidden files over a steganographic
//! volume, with a replicated self-healing anchor and a scrub/repair sweep.
//!
//! [`ResilientStore`] wraps the plain [`StegFs`] substrate and keeps, for
//! every hidden file it manages:
//!
//! * `m` sealed parity blocks per stripe of `k` content blocks, placed
//!   through the same uniform [`stegfs_base::ClassMap::claim`] allocation as
//!   hidden data — on disk a parity block is indistinguishable from free
//!   space;
//! * a per-file [`StripeMap`] of plaintext integrity checks and parity
//!   locations, persisted as a *shadow hidden file* (sealed and scattered
//!   like any other hidden file, never plaintext on disk);
//! * an entry in the sealed file-access-key table carried by the 3-way
//!   replicated [`VolumeAnchor`], so [`ResilientStore::open`] can rediscover
//!   every file from the master key alone.
//!
//! Parity is computed over *plaintext* data fields: a dummy update (reseal)
//! re-randomises every ciphertext byte while leaving the plaintext intact, so
//! plaintext parity survives arbitrarily many reseals where ciphertext parity
//! would go stale on the first one.
//!
//! The read path verifies the cheap keyed hash of every block inline and
//! falls back to stripe reconstruction on a mismatch; it never returns wrong
//! bytes. The scrub path verifies the authoritative truncated HMACs in ranged
//! batches and repairs every degraded stripe onto freshly claimed blocks.
//!
//! Scope: stripes protect content and parity blocks. File headers and
//! indirect pointer blocks rely on the replicated anchor (which can re-locate
//! headers via the FAK table) rather than parity; extending striping to the
//! metadata tree is future work.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use stegfs_base::{
    BlockClass, FileAccessKey, OpenFile, ShardedBlockMap, StegFs, StegFsConfig, DEFAULT_MAP_SHARDS,
};
use stegfs_blockdev::{BlockDevice, BlockId};
use stegfs_crypto::{Aes256, CbcCipher, HashDrbg, Key256};

use crate::codec::ErasureCodec;
use crate::error::ResilienceError;
use crate::journal::{
    BlockWriteIntent, IntentBody, IntentJournal, IntentRecord, ParityIntent, SHADOW_ENTRY_BASE,
};
use crate::scale::RegistryState;
use crate::stats::{RecoveryReport, ResilienceStats, ScrubReport, SharedResilienceStats};
use crate::stripe::{BlockCheck, ChecksumKeys, ParityEntry, StripeConfig, StripeMap};
use crate::superblock::VolumeAnchor;

/// Configuration of a resilient volume.
#[derive(Debug, Clone, Copy)]
pub struct ResilienceConfig {
    /// Striping shape: `k` data blocks + `m` parity blocks per stripe.
    pub stripe: StripeConfig,
    /// Underlying file-system configuration.
    pub fs: StegFsConfig,
    /// Maximum blocks per ranged read in a scrub sweep.
    pub scrub_batch: usize,
    /// Logical intent-journal slots claimed at format time. `0` disables
    /// journaling entirely (the pre-journal update path, kept as the bench
    /// baseline); each slot admits one in-flight multi-block mutation and
    /// occupies *two* uniformly claimed blocks (a replicated pair, so a lost
    /// slot block cannot orphan an in-flight intent).
    pub journal_slots: usize,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        Self {
            stripe: StripeConfig::new(4, 2),
            fs: StegFsConfig::default(),
            scrub_batch: 64,
            journal_slots: 4,
        }
    }
}

impl ResilienceConfig {
    /// Override the striping shape.
    pub fn with_stripe(mut self, k: usize, m: usize) -> Self {
        self.stripe = StripeConfig::new(k, m);
        self
    }

    /// Override the file-system configuration.
    pub fn with_fs(mut self, fs: StegFsConfig) -> Self {
        self.fs = fs;
        self
    }

    /// Override the intent-journal slot count (`0` disables journaling).
    pub fn with_journal_slots(mut self, slots: usize) -> Self {
        self.journal_slots = slots;
        self
    }
}

/// One managed file: its open handle, the shadow file holding the stripe map,
/// and the in-memory stripe map itself.
struct FileState {
    open: OpenFile,
    shadow: OpenFile,
    stripes: StripeMap,
}

/// Outcome of repairing one stripe.
struct StripeRepair {
    /// Physical locations where corruption was detected.
    detected: Vec<BlockId>,
    /// Blocks reconstructed and rewritten.
    repaired: u64,
    /// Whether the stripe was beyond parity tolerance.
    unrecoverable: bool,
}

/// Which shard of which stripe a physical location belongs to (scrub sweep
/// bookkeeping).
#[derive(Clone, Copy)]
enum ShardRef {
    /// Data block at this file-wide index.
    Data(u64),
    /// Parity row of a stripe.
    Parity(u64, usize),
}

/// A store of erasure-coded hidden files over a block device.
pub struct ResilientStore<D> {
    pub(crate) fs: StegFs<D>,
    pub(crate) map: ShardedBlockMap,
    codec: ErasureCodec,
    stripe_cfg: StripeConfig,
    scrub_batch: usize,
    pub(crate) master: Key256,
    anchor_key: Key256,
    payload_key: Key256,
    /// Anchor generation counter; bumped on every FAK-table change.
    generation: Mutex<u64>,
    /// Managed files by path. `BTreeMap` so that every sweep and every
    /// persisted table is in deterministic path order.
    files: RwLock<BTreeMap<String, Arc<RwLock<FileState>>>>,
    pub(crate) journal: IntentJournal,
    /// The persistent sharded registry, when the volume carries one.
    pub(crate) registry: RwLock<Option<RegistryState>>,
    /// Outcome of the journal-recovery pass run by [`ResilientStore::open`].
    recovery: Mutex<RecoveryReport>,
    stats: Arc<SharedResilienceStats>,
}

/// Outcome of recovering one intent record.
#[derive(PartialEq, Eq)]
pub(crate) enum Recovered {
    /// The operation was completed forward (its new state made durable).
    Forward,
    /// The operation was undone (the old state restored).
    Back,
    /// The record was certainly complete; nothing to do.
    Stale,
    /// The affected stripe was beyond parity tolerance.
    Lost,
}

/// Outcome of resolving one stripe's group of `WriteBatch` entries.
enum GroupResolution {
    /// The first `complete` entries of the group hold (or were brought to)
    /// their post state; the rest are back in their pre state. `touched`
    /// reports whether any device or stripe-map state changed.
    Advanced { complete: usize, touched: bool },
    /// The group does not describe the file's current geometry — a later
    /// serialised (therefore complete) operation superseded the record.
    Stale,
    /// More shards out of state than parity can solve.
    Lost,
}

impl<D: BlockDevice> ResilientStore<D> {
    /// Format `device` as a fresh resilient volume owned by `master`.
    pub fn format(
        device: D,
        cfg: ResilienceConfig,
        master: &Key256,
        seed: u64,
    ) -> Result<Self, ResilienceError> {
        let (fs, scalar) = StegFs::format(device, cfg.fs, seed)?;
        let map = ShardedBlockMap::from_scalar(&scalar, DEFAULT_MAP_SHARDS);
        for b in VolumeAnchor::replica_blocks(fs.superblock().num_blocks) {
            map.set(b, BlockClass::Reserved);
        }
        // Claim the journal slots through the same uniform allocation as
        // hidden data; the format-time random fill is a valid empty journal.
        // Two blocks per logical slot: consecutive pairs mirror each other,
        // so a lost slot block can no longer orphan an in-flight intent.
        let mut mref = &map;
        let slots = fs.allocate_blocks(&mut mref, 2 * cfg.journal_slots as u64)?;
        let store = Self::assemble(fs, map, cfg, master, 0, slots);
        store.persist_anchor()?;
        Ok(store)
    }

    /// Open an existing resilient volume: quorum-read the anchor (repairing
    /// stale or corrupt replicas in place), mount the file system, reopen
    /// every file listed in the sealed FAK table together with its shadow
    /// stripe map, then run journal recovery — rolling every interrupted
    /// mutation forward or back — before the volume is handed out.
    pub fn open(
        device: D,
        cfg: ResilienceConfig,
        master: &Key256,
        seed: u64,
    ) -> Result<Self, ResilienceError> {
        let anchor_key = master.derive("resilience:anchor");
        let (anchor, repaired) = VolumeAnchor::read_quorum(&device, &anchor_key)?;
        let fs = StegFs::mount_with(device, cfg.fs.header_probe_limit, seed)?;
        let map = ShardedBlockMap::new_all_dummy(fs.superblock().num_blocks, DEFAULT_MAP_SHARDS);
        for b in VolumeAnchor::replica_blocks(fs.superblock().num_blocks) {
            map.set(b, BlockClass::Reserved);
        }
        let payload_key = master.derive("resilience:payload");
        let plain = Self::open_payload_with(&payload_key, &anchor.payload)?;
        let (slots, table) = Self::parse_payload(&plain)?;
        for &slot in &slots {
            map.set(slot, BlockClass::Data);
        }
        let store = Self::assemble(fs, map, cfg, master, anchor.generation, slots);
        store.stats.add_anchor_repairs(repaired.len() as u64);

        for (path, fak) in table {
            let open = store.fs.open_file(&fak, &path)?;
            let shadow_fak = store.shadow_fak(&path);
            let shadow = store.fs.open_file(&shadow_fak, &Self::shadow_path(&path))?;
            let encoded = store.fs.read_file(&shadow)?;
            let stripes = StripeMap::decode(&encoded)?;
            if stripes.num_data() != open.header.num_blocks() {
                return Err(ResilienceError::Corrupt(format!(
                    "stripe map covers {} blocks but {path} has {}",
                    stripes.num_data(),
                    open.header.num_blocks()
                )));
            }
            let mut mref = &store.map;
            store.fs.register_file(&mut mref, &open);
            store.fs.register_file(&mut mref, &shadow);
            for loc in stripes.parity_locations() {
                store.map.set(loc, BlockClass::Data);
            }
            store.files.write().insert(
                path,
                Arc::new(RwLock::new(FileState {
                    open,
                    shadow,
                    stripes,
                })),
            );
        }
        // Load the persistent registry geometry (if the volume carries one)
        // before journal recovery: a `RegistryCheckpoint` intent needs the
        // shard geometry to resolve. The geometry file is written exactly
        // once at `init_registry`, so reading it pre-recovery is safe.
        store.load_registry()?;
        let report = store.recover_journal()?;
        *store.recovery.lock() = report;
        Ok(store)
    }

    fn assemble(
        fs: StegFs<D>,
        map: ShardedBlockMap,
        cfg: ResilienceConfig,
        master: &Key256,
        generation: u64,
        journal_slots: Vec<BlockId>,
    ) -> Self {
        Self {
            codec: ErasureCodec::new(cfg.stripe.k, cfg.stripe.m),
            stripe_cfg: cfg.stripe,
            scrub_batch: cfg.scrub_batch.max(1),
            master: *master,
            anchor_key: master.derive("resilience:anchor"),
            payload_key: master.derive("resilience:payload"),
            generation: Mutex::new(generation),
            files: RwLock::new(BTreeMap::new()),
            journal: IntentJournal::new(master, journal_slots),
            registry: RwLock::new(None),
            recovery: Mutex::new(RecoveryReport::default()),
            stats: Arc::new(SharedResilienceStats::default()),
            fs,
            map,
        }
    }

    /// The underlying file system.
    pub fn fs(&self) -> &StegFs<D> {
        &self.fs
    }

    /// Consume the store and return the raw device (simulated unmount — no
    /// flush is performed; checkpoint the registry first if it has dirty
    /// resident shards).
    pub fn into_device(self) -> D {
        self.fs.into_device()
    }

    /// The shared block classification map.
    pub fn block_map(&self) -> &ShardedBlockMap {
        &self.map
    }

    /// The striping shape.
    pub fn stripe_config(&self) -> StripeConfig {
        self.stripe_cfg
    }

    /// Shared resilience counters.
    pub fn shared_stats(&self) -> Arc<SharedResilienceStats> {
        Arc::clone(&self.stats)
    }

    /// Snapshot of the resilience counters.
    pub fn stats(&self) -> ResilienceStats {
        self.stats.snapshot()
    }

    /// The anchor generation the volume currently carries. Bumped on every
    /// FAK-table change; the bump is the atomic commit point of file creation.
    pub fn generation(&self) -> u64 {
        *self.generation.lock()
    }

    /// The intent-journal slot locations (empty when journaling is disabled).
    pub fn journal_slots(&self) -> Vec<BlockId> {
        self.journal.slots().to_vec()
    }

    /// What the journal-recovery pass of [`ResilientStore::open`] did. A
    /// freshly formatted store reports a clean (empty) recovery.
    pub fn last_recovery(&self) -> RecoveryReport {
        self.recovery.lock().clone()
    }

    /// Paths of every managed file, in order.
    pub fn paths(&self) -> Vec<String> {
        self.files.read().keys().cloned().collect()
    }

    /// On-disk layout of `path`'s stripes: for each stripe, the physical
    /// locations of its live data shards followed by its `m` parity shards.
    ///
    /// Exposed for fault-injection tests and offline scrub tooling; it
    /// reveals nothing an owner of the file's access key could not already
    /// derive.
    pub fn stripe_layout(&self, path: &str) -> Result<Vec<Vec<BlockId>>, ResilienceError> {
        let state = self.file_state(path)?;
        let g = state.read();
        let mut out = Vec::new();
        for stripe in 0..g.stripes.num_stripes() {
            let mut blocks: Vec<BlockId> = g
                .stripes
                .stripe_data_range(stripe)
                .map(|i| g.open.header.blocks[i as usize])
                .collect();
            for row in 0..self.stripe_cfg.m {
                blocks.push(g.stripes.parity_entry(stripe, row).location);
            }
            out.push(blocks);
        }
        Ok(out)
    }

    // ----- key derivations ---------------------------------------------

    fn file_master(&self, path: &str) -> Key256 {
        self.master.derive(&format!("resilience:file:{path}"))
    }

    fn file_fak(&self, path: &str) -> FileAccessKey {
        FileAccessKey::from_master(&self.file_master(path))
    }

    fn shadow_fak(&self, path: &str) -> FileAccessKey {
        FileAccessKey::from_master(&self.file_master(path).derive("shadow"))
    }

    fn shadow_path(path: &str) -> String {
        // '\u{0}' cannot appear in caller-supplied paths, so shadow paths
        // never collide with user files.
        format!("{path}\u{0}stripe-map")
    }

    fn checksum_keys(&self, open: &OpenFile) -> Result<ChecksumKeys, ResilienceError> {
        let ck = open
            .fak
            .content_key()
            .ok_or(ResilienceError::Corrupt("file without content key".into()))?;
        Ok(ChecksumKeys::derive(ck))
    }

    // ----- anchor / FAK table ------------------------------------------

    /// Serialise the anchor payload plaintext: the journal slot locations,
    /// then the FAK table as `count` and `(path_len, path, fak)` entries in
    /// path order.
    fn encode_payload_plain(&self) -> Vec<u8> {
        let files = self.files.read();
        let mut out = Vec::new();
        let slots = self.journal.slots();
        out.extend_from_slice(&(slots.len() as u16).to_le_bytes());
        for &slot in slots {
            out.extend_from_slice(&slot.to_le_bytes());
        }
        out.extend_from_slice(&(files.len() as u32).to_le_bytes());
        for (path, state) in files.iter() {
            out.extend_from_slice(&(path.len() as u16).to_le_bytes());
            out.extend_from_slice(path.as_bytes());
            out.extend_from_slice(&state.read().open.fak.to_bytes());
        }
        out
    }

    /// Parse the anchor payload plaintext: journal slot locations, then the
    /// FAK table.
    #[allow(clippy::type_complexity)]
    fn parse_payload(
        plain: &[u8],
    ) -> Result<(Vec<BlockId>, Vec<(String, FileAccessKey)>), ResilienceError> {
        let corrupt = |what: &str| ResilienceError::Corrupt(format!("anchor payload: {what}"));
        if plain.len() < 2 {
            return Err(corrupt("truncated slot count"));
        }
        let num_slots = u16::from_le_bytes(plain[..2].try_into().unwrap()) as usize;
        let mut off = 2;
        if off + num_slots * 8 > plain.len() {
            return Err(corrupt("truncated slot list"));
        }
        let mut slots = Vec::with_capacity(num_slots);
        for _ in 0..num_slots {
            slots.push(u64::from_le_bytes(plain[off..off + 8].try_into().unwrap()));
            off += 8;
        }
        if off + 4 > plain.len() {
            return Err(corrupt("truncated count"));
        }
        let count = u32::from_le_bytes(plain[off..off + 4].try_into().unwrap()) as usize;
        off += 4;
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            if off + 2 > plain.len() {
                return Err(corrupt("truncated path length"));
            }
            let plen = u16::from_le_bytes(plain[off..off + 2].try_into().unwrap()) as usize;
            off += 2;
            if off + plen + FileAccessKey::ENCODED_LEN > plain.len() {
                return Err(corrupt("truncated entry"));
            }
            let path = String::from_utf8(plain[off..off + plen].to_vec())
                .map_err(|_| corrupt("non-UTF-8 path"))?;
            off += plen;
            let fak = FileAccessKey::from_bytes(&plain[off..off + FileAccessKey::ENCODED_LEN])
                .ok_or_else(|| corrupt("malformed access key"))?;
            off += FileAccessKey::ENCODED_LEN;
            out.push((path, fak));
        }
        Ok((slots, out))
    }

    /// Seal the table under the payload key: `IV ‖ plain_len ‖ CBC(padded)`.
    /// Confidentiality only — integrity comes from the anchor's replica MACs,
    /// which cover the whole payload.
    fn seal_payload(&self, plain: &[u8]) -> Vec<u8> {
        let mut padded = plain.to_vec();
        padded.resize(plain.len().div_ceil(16) * 16, 0);
        let mut iv = [0u8; 16];
        self.fs.with_rng(|rng| rng.fill_bytes(&mut iv));
        let cbc = CbcCipher::new(Aes256::new(self.payload_key.as_bytes()));
        cbc.encrypt_in_place(&iv, &mut padded)
            .expect("padded to block size");
        let mut out = Vec::with_capacity(16 + 4 + padded.len());
        out.extend_from_slice(&iv);
        out.extend_from_slice(&(plain.len() as u32).to_le_bytes());
        out.extend_from_slice(&padded);
        out
    }

    fn open_payload_with(key: &Key256, sealed: &[u8]) -> Result<Vec<u8>, ResilienceError> {
        if sealed.len() < 20 || (sealed.len() - 20) % 16 != 0 {
            return Err(ResilienceError::Corrupt(
                "anchor payload framing".to_string(),
            ));
        }
        let iv: [u8; 16] = sealed[..16].try_into().unwrap();
        let plain_len = u32::from_le_bytes(sealed[16..20].try_into().unwrap()) as usize;
        let mut data = sealed[20..].to_vec();
        if plain_len > data.len() {
            return Err(ResilienceError::Corrupt(
                "anchor payload length".to_string(),
            ));
        }
        let cbc = CbcCipher::new(Aes256::new(key.as_bytes()));
        cbc.decrypt_in_place(&iv, &mut data)
            .map_err(|e| ResilienceError::Corrupt(format!("anchor payload cipher: {e:?}")))?;
        data.truncate(plain_len);
        Ok(data)
    }

    /// Re-write every anchor replica with the current FAK table under a
    /// bumped generation.
    fn persist_anchor(&self) -> Result<(), ResilienceError> {
        let payload = self.seal_payload(&self.encode_payload_plain());
        let capacity = VolumeAnchor::payload_capacity(self.fs.codec().block_size());
        if payload.len() > capacity {
            return Err(ResilienceError::AnchorOverflow {
                needed: payload.len(),
                capacity,
            });
        }
        let mut generation = self.generation.lock();
        *generation += 1;
        let anchor = VolumeAnchor {
            superblock: *self.fs.superblock(),
            generation: *generation,
            payload,
        };
        anchor.write_replicas(self.fs.device(), &self.anchor_key)?;
        Ok(())
    }

    // ----- file creation -----------------------------------------------

    /// Create a hidden file at `path` with parity per the store's striping
    /// shape, and persist it in the anchor's FAK table.
    ///
    /// The operation is journaled: a `Create` intent lands before the first
    /// data write, and the anchor generation bump that publishes the path is
    /// the commit point. A crash anywhere in between is rolled back at the
    /// next open by randomising the (derivable) header first — the file never
    /// half-exists.
    pub fn create_file(&self, path: &str, content: &[u8]) -> Result<(), ResilienceError> {
        if self.files.read().contains_key(path) {
            return Err(ResilienceError::Corrupt(format!(
                "file {path} already exists"
            )));
        }
        let intent = self.journal.begin(&self.fs, path, IntentBody::Create)?;
        if intent.is_some() {
            self.stats.count_intent_journaled();
        }
        let fak = self.file_fak(path);
        let mut mref = &self.map;
        let open = self.fs.create_file(&mut mref, path, &fak, content)?;
        let state = match self.stripe_file(open, content) {
            Ok(state) => state,
            Err(e) => {
                // Unwind the half-created file so the volume stays clean.
                let reopened = self.fs.open_file(&fak, path)?;
                self.fs.delete_file(&mut mref, reopened)?;
                return Err(e);
            }
        };
        self.files
            .write()
            .insert(path.to_string(), Arc::new(RwLock::new(state)));
        self.persist_anchor()
    }

    /// Compute checks and parity for a freshly created file and persist the
    /// stripe map as a shadow hidden file.
    fn stripe_file(&self, open: OpenFile, content: &[u8]) -> Result<FileState, ResilienceError> {
        let keys = self.checksum_keys(&open)?;
        let content_key = *open.fak.content_key().expect("checked above");
        let per = self.fs.content_bytes_per_block();
        let (k, m) = (self.stripe_cfg.k, self.stripe_cfg.m);
        let num_data = open.header.num_blocks();
        let mut stripes = StripeMap::new(self.stripe_cfg, num_data);
        let mut mref = &self.map;

        for stripe in 0..stripes.num_stripes() {
            let range = stripes.stripe_data_range(stripe);
            let mut data: Vec<Vec<u8>> = Vec::with_capacity(k);
            for i in range {
                // Reconstitute the full zero-padded data field from the
                // content (what create_file sealed) instead of re-reading it.
                let mut field = vec![0u8; per];
                let start = (i as usize) * per;
                if start < content.len() {
                    let end = (start + per).min(content.len());
                    field[..end - start].copy_from_slice(&content[start..end]);
                }
                stripes.set_data_check(i, keys.check(&field));
                data.push(field);
            }
            // Short final stripe: missing data shards are known-zero.
            data.resize(k, vec![0u8; per]);
            let refs: Vec<&[u8]> = data.iter().map(Vec::as_slice).collect();
            let parity = self.codec.encode(&refs);

            let locs = self.fs.allocate_blocks(&mut mref, m as u64)?;
            for (row, shard) in parity.iter().enumerate() {
                self.fs.with_rng(|rng| {
                    self.fs.codec().write_sealed(
                        self.fs.device(),
                        locs[row],
                        &content_key,
                        shard,
                        rng,
                    )
                })?;
                stripes.set_parity_entry(
                    stripe,
                    row,
                    ParityEntry {
                        location: locs[row],
                        check: keys.check(shard),
                    },
                );
            }
        }

        let shadow_fak = self.shadow_fak(&open.path);
        let shadow = self.fs.create_file(
            &mut mref,
            &Self::shadow_path(&open.path),
            &shadow_fak,
            &stripes.encode(),
        )?;
        Ok(FileState {
            open,
            shadow,
            stripes,
        })
    }

    fn file_state(&self, path: &str) -> Result<Arc<RwLock<FileState>>, ResilienceError> {
        self.files
            .read()
            .get(path)
            .cloned()
            .ok_or_else(|| ResilienceError::UnknownFile(path.to_string()))
    }

    // ----- read path ---------------------------------------------------

    /// Read a whole file, verifying the fast check of every block inline.
    /// A check failure triggers stripe reconstruction; the call either
    /// returns the file's true bytes or reports it unrecoverable — never
    /// silently wrong data.
    pub fn read_file(&self, path: &str) -> Result<Vec<u8>, ResilienceError> {
        let state = self.file_state(path)?;
        let guard = state.read();
        let keys = self.checksum_keys(&guard.open)?;
        let per = self.fs.content_bytes_per_block();
        let file_size = guard.open.header.file_size as usize;
        let num = guard.open.header.num_blocks();

        let mut out = Vec::with_capacity(num as usize * per);
        let mut bad: Vec<u64> = Vec::new();
        for i in 0..num {
            let field = self.fs.read_content_block(&guard.open, i)?;
            if keys.fast(&field) == guard.stripes.data_check(i).fast {
                self.stats.count_read_verified();
                out.extend_from_slice(&field);
            } else {
                self.stats.count_read_check_failure();
                bad.push(i);
                out.resize(out.len() + per, 0);
            }
        }
        if !bad.is_empty() {
            drop(guard);
            let mut g = state.write();
            let stripes: BTreeSet<u64> =
                bad.iter().map(|&i| self.stripe_cfg.stripe_of(i)).collect();
            let mut lost = Vec::new();
            for stripe in stripes {
                let repair = self.repair_stripe(&mut g, stripe, true)?;
                if repair.unrecoverable {
                    lost.push(stripe);
                }
            }
            if !lost.is_empty() {
                return Err(ResilienceError::Unrecoverable {
                    path: path.to_string(),
                    stripes: lost,
                });
            }
            for i in bad {
                let field = self.fs.read_content_block(&g.open, i)?;
                if keys.fast(&field) != g.stripes.data_check(i).fast {
                    return Err(ResilienceError::Unrecoverable {
                        path: path.to_string(),
                        stripes: vec![self.stripe_cfg.stripe_of(i)],
                    });
                }
                let start = i as usize * per;
                out[start..start + per].copy_from_slice(&field);
            }
        }
        out.truncate(file_size);
        Ok(out)
    }

    // ----- update path -------------------------------------------------

    /// Overwrite one content block, folding the plaintext delta into every
    /// parity shard of the stripe (`p' = p ⊕ C[i][j]·(old ⊕ new)`) instead of
    /// re-encoding the whole stripe.
    ///
    /// Journaled: a `WriteBatch` intent carrying the pre- and post-image
    /// checks of the data block and every parity row lands before the first
    /// device write, so a power cut leaves the stripe recoverable to exactly
    /// the old or the new content — never a mix.
    pub fn write_block(&self, path: &str, index: u64, data: &[u8]) -> Result<(), ResilienceError> {
        let state = self.file_state(path)?;
        let mut g = state.write();
        self.write_block_locked(path, &mut g, index, data)
    }

    fn write_block_locked(
        &self,
        path: &str,
        g: &mut FileState,
        index: u64,
        data: &[u8],
    ) -> Result<(), ResilienceError> {
        let per = self.fs.content_bytes_per_block();
        if data.len() > per {
            return Err(ResilienceError::Fs(stegfs_base::FsError::Cipher(format!(
                "block write of {} bytes exceeds data field of {per}",
                data.len()
            ))));
        }
        let old = self.healed_read(path, g, index)?;
        let mut new_field = vec![0u8; per];
        new_field[..data.len()].copy_from_slice(data);
        self.write_batch_locked(path, g, vec![(index, old, new_field)])
    }

    /// Read one content block's plaintext for a delta update, healing its
    /// stripe first when the fast check says the stored bytes are stale or
    /// torn (a delta against corrupt bytes would poison every parity row).
    fn healed_read(
        &self,
        path: &str,
        g: &mut FileState,
        index: u64,
    ) -> Result<Vec<u8>, ResilienceError> {
        let keys = self.checksum_keys(&g.open)?;
        let mut old = self.fs.read_content_block(&g.open, index)?;
        if keys.fast(&old) != g.stripes.data_check(index).fast {
            let stripe = self.stripe_cfg.stripe_of(index);
            let repair = self.repair_stripe(g, stripe, true)?;
            if repair.unrecoverable {
                return Err(ResilienceError::Unrecoverable {
                    path: path.to_string(),
                    stripes: vec![stripe],
                });
            }
            old = self.fs.read_content_block(&g.open, index)?;
        }
        Ok(old)
    }

    /// Apply an ordered list of `(index, old_field, new_field)` delta
    /// updates. Batches larger than one record chunk to the journal's
    /// capacity; within a chunk one sealed intent carries the whole pre/post
    /// chain, the per-entry data and parity writes follow record order, and
    /// the stripe-map shadow lands once at the end — so the journal and
    /// shadow costs amortise over every block of the chunk.
    fn write_batch_locked(
        &self,
        path: &str,
        g: &mut FileState,
        changes: Vec<(u64, Vec<u8>, Vec<u8>)>,
    ) -> Result<(), ResilienceError> {
        if changes.is_empty() {
            return Ok(());
        }
        let keys = self.checksum_keys(&g.open)?;
        let content_key = *g.open.fak.content_key().expect("checked above");
        let (k, m) = (self.stripe_cfg.k, self.stripe_cfg.m);
        let per = self.fs.content_bytes_per_block();
        // Reserve record room for the shadow rewrite that closes each chunk,
        // so the map write is journaled like every other write of the batch.
        // If a pathological shadow size would starve the record, fall back to
        // the unreserved capacity and leave the shadow unrecorded (recovery
        // re-derives it either way).
        let mut shadow_tail = g.shadow.header.num_blocks() as usize;
        let mut cap = self
            .journal
            .batch_capacity_reserving(&self.fs, path, m, shadow_tail);
        if cap == 0 {
            shadow_tail = 0;
            cap = self.journal.batch_capacity(&self.fs, path, m).max(1);
        }
        for chunk in changes.chunks(cap) {
            // Plan the chunk: read each affected stripe's parity once, fold
            // every delta in entry order, and snapshot the chain state after
            // each entry — those snapshots are exactly the parity images the
            // writes below produce and the checks the intent records.
            let mut parity_now: BTreeMap<u64, Vec<Vec<u8>>> = BTreeMap::new();
            let mut entries: Vec<BlockWriteIntent> = Vec::with_capacity(chunk.len());
            let mut planned_parity: Vec<Vec<Vec<u8>>> = Vec::with_capacity(chunk.len());
            for (index, old, new_field) in chunk {
                let stripe = self.stripe_cfg.stripe_of(*index);
                let parities = match parity_now.entry(stripe) {
                    std::collections::btree_map::Entry::Occupied(e) => e.into_mut(),
                    std::collections::btree_map::Entry::Vacant(e) => {
                        let mut rows = Vec::with_capacity(m);
                        for row in 0..m {
                            let entry = *g.stripes.parity_entry(stripe, row);
                            rows.push(self.fs.codec().read_sealed(
                                self.fs.device(),
                                entry.location,
                                &content_key,
                            )?);
                        }
                        e.insert(rows)
                    }
                };
                let pre_parity: Vec<BlockCheck> = parities.iter().map(|p| keys.check(p)).collect();
                let delta: Vec<u8> = old.iter().zip(new_field).map(|(a, b)| a ^ b).collect();
                let slot = (*index - stripe * k as u64) as usize;
                self.codec.apply_delta(slot, &delta, parities);
                entries.push(BlockWriteIntent {
                    index: *index,
                    data_location: g.open.header.blocks[*index as usize],
                    data_pre: keys.check(old),
                    data_post: keys.check(new_field),
                    parity: (0..m)
                        .map(|row| ParityIntent {
                            location: g.stripes.parity_entry(stripe, row).location,
                            pre: pre_parity[row],
                            post: keys.check(&parities[row]),
                        })
                        .collect(),
                });
                planned_parity.push(parities.clone());
            }

            // Record the chunk-closing shadow rewrite as the final entries of
            // the intent: pre = the map as it stands, post = the map with
            // every planned check applied. Parity-less — the shadow is not
            // striped; recovery re-derives it from the resolved frontier and
            // uses these checks to verify the on-disk copy.
            if shadow_tail > 0 {
                let shadow_keys = self.checksum_keys(&g.shadow)?;
                let mut post_map = g.stripes.clone();
                for e in &entries {
                    post_map.set_data_check(e.index, e.data_post);
                    let stripe = self.stripe_cfg.stripe_of(e.index);
                    for (row, p) in e.parity.iter().enumerate() {
                        let mut pe = *post_map.parity_entry(stripe, row);
                        pe.check = p.post;
                        post_map.set_parity_entry(stripe, row, pe);
                    }
                }
                let pre_encoded = g.stripes.encode();
                let post_encoded = post_map.encode();
                for (i, (pre, post)) in pre_encoded
                    .chunks(per)
                    .zip(post_encoded.chunks(per))
                    .enumerate()
                {
                    let mut pre_field = vec![0u8; per];
                    pre_field[..pre.len()].copy_from_slice(pre);
                    let mut post_field = vec![0u8; per];
                    post_field[..post.len()].copy_from_slice(post);
                    entries.push(BlockWriteIntent {
                        index: SHADOW_ENTRY_BASE + i as u64,
                        data_location: g.shadow.header.blocks[i],
                        data_pre: shadow_keys.check(&pre_field),
                        data_post: shadow_keys.check(&post_field),
                        parity: Vec::new(),
                    });
                }
            }

            // Write-ahead intent: every pre/post check the recovery pass
            // needs to classify each affected block as old or new, sealed
            // into one journal slot before the first data write below.
            let intent = self.journal.begin(
                &self.fs,
                path,
                IntentBody::WriteBatch {
                    entries: entries.clone(),
                },
            )?;
            if intent.is_some() {
                self.stats.count_intent_journaled();
            }

            for ((index, _, new_field), (entry, parities)) in
                chunk.iter().zip(entries.iter().zip(&planned_parity))
            {
                let stripe = self.stripe_cfg.stripe_of(*index);
                self.fs
                    .write_content_block(&mut g.open, *index, new_field)?;
                g.stripes.set_data_check(*index, entry.data_post);
                for (row, shard) in parities.iter().enumerate() {
                    let mut pe = *g.stripes.parity_entry(stripe, row);
                    self.fs.with_rng(|rng| {
                        self.fs.codec().write_sealed(
                            self.fs.device(),
                            pe.location,
                            &content_key,
                            shard,
                            rng,
                        )
                    })?;
                    pe.check = entry.parity[row].post;
                    g.stripes.set_parity_entry(stripe, row, pe);
                }
            }
            self.rewrite_shadow(g)?;
        }
        Ok(())
    }

    /// Rewrite a whole file in place through the delta-parity path: only
    /// blocks whose content actually changed are touched, the whole change
    /// set journaled as one (or, past the record capacity, a few) ordered
    /// `WriteBatch` intent(s). The new content must occupy the same number
    /// of blocks (striped files do not resize in place).
    pub fn write_file(&self, path: &str, content: &[u8]) -> Result<(), ResilienceError> {
        let state = self.file_state(path)?;
        let mut g = state.write();
        let per = self.fs.content_bytes_per_block();
        let num = g.open.header.num_blocks();
        let new_blocks = (content.len().div_ceil(per) as u64).max(1);
        if new_blocks != num {
            return Err(ResilienceError::Corrupt(format!(
                "rewrite of {path} needs {new_blocks} blocks but the file has {num}"
            )));
        }
        let mut changes: Vec<(u64, Vec<u8>, Vec<u8>)> = Vec::new();
        for i in 0..num {
            let start = i as usize * per;
            let end = (start + per).min(content.len());
            let chunk = content.get(start..end).unwrap_or(&[]);
            let mut new_field = vec![0u8; per];
            new_field[..chunk.len()].copy_from_slice(chunk);
            let old = self.healed_read(path, &mut g, i)?;
            if old != new_field {
                changes.push((i, old, new_field));
            }
        }
        self.write_batch_locked(path, &mut g, changes)?;
        if g.open.header.file_size != content.len() as u64 {
            g.open.header.file_size = content.len() as u64;
            self.fs.save(&mut g.open)?;
        }
        Ok(())
    }

    /// Rewrite a whole file by re-encoding every stripe from scratch —
    /// re-sealing all `k` data blocks and all `m` parity rows whether or not
    /// they changed. Kept as the measurement baseline the delta path in
    /// [`ResilientStore::write_file`] is benchmarked against; not journaled.
    pub fn rewrite_file_full(&self, path: &str, content: &[u8]) -> Result<(), ResilienceError> {
        let state = self.file_state(path)?;
        let mut g = state.write();
        let per = self.fs.content_bytes_per_block();
        let num = g.open.header.num_blocks();
        let new_blocks = (content.len().div_ceil(per) as u64).max(1);
        if new_blocks != num {
            return Err(ResilienceError::Corrupt(format!(
                "rewrite of {path} needs {new_blocks} blocks but the file has {num}"
            )));
        }
        let keys = self.checksum_keys(&g.open)?;
        let content_key = *g.open.fak.content_key().expect("checked above");
        let (k, m) = (self.stripe_cfg.k, self.stripe_cfg.m);
        for stripe in 0..g.stripes.num_stripes() {
            let mut data: Vec<Vec<u8>> = Vec::with_capacity(k);
            for i in g.stripes.stripe_data_range(stripe) {
                let start = i as usize * per;
                let end = (start + per).min(content.len());
                let chunk = content.get(start..end).unwrap_or(&[]);
                let mut field = vec![0u8; per];
                field[..chunk.len()].copy_from_slice(chunk);
                self.fs.write_content_block(&mut g.open, i, &field)?;
                g.stripes.set_data_check(i, keys.check(&field));
                data.push(field);
            }
            data.resize(k, vec![0u8; per]);
            let refs: Vec<&[u8]> = data.iter().map(Vec::as_slice).collect();
            let parity = self.codec.encode(&refs);
            for (row, shard) in parity.iter().enumerate().take(m) {
                let mut entry = *g.stripes.parity_entry(stripe, row);
                self.fs.with_rng(|rng| {
                    self.fs.codec().write_sealed(
                        self.fs.device(),
                        entry.location,
                        &content_key,
                        shard,
                        rng,
                    )
                })?;
                entry.check = keys.check(shard);
                g.stripes.set_parity_entry(stripe, row, entry);
            }
        }
        if g.open.header.file_size != content.len() as u64 {
            g.open.header.file_size = content.len() as u64;
            self.fs.save(&mut g.open)?;
        }
        self.rewrite_shadow(&mut g)
    }

    /// Dummy-update every block of a file (content, parity, header tree):
    /// reseal each under a fresh IV. Ciphertexts all change; every plaintext
    /// check and parity relation survives untouched — the property that makes
    /// plaintext-domain parity compatible with cover traffic.
    pub fn reseal_file(&self, path: &str) -> Result<(), ResilienceError> {
        let state = self.file_state(path)?;
        let g = state.read();
        let content_key = *g.open.fak.content_key().expect("managed files have one");
        for &b in &g.open.header.blocks {
            self.fs.reseal_block(b, &content_key)?;
        }
        for loc in g.stripes.parity_locations() {
            self.fs.reseal_block(loc, &content_key)?;
        }
        self.fs
            .reseal_block(g.open.header_location, g.open.fak.header_key())?;
        for &b in &g.open.indirect_locations {
            self.fs.reseal_block(b, g.open.fak.header_key())?;
        }
        Ok(())
    }

    // ----- repair ------------------------------------------------------

    /// Persist the in-memory stripe map into the shadow file, in place. The
    /// encoded length is fixed for a given shape, so the shadow's geometry
    /// never changes.
    fn rewrite_shadow(&self, g: &mut FileState) -> Result<(), ResilienceError> {
        let encoded = g.stripes.encode();
        let per = self.fs.content_bytes_per_block();
        for (i, chunk) in encoded.chunks(per).enumerate() {
            self.fs
                .write_content_block(&mut g.shadow, i as u64, chunk)?;
        }
        Ok(())
    }

    /// MAC-verify every shard of `stripe` and reconstruct the missing ones,
    /// rewriting repaired shards onto freshly claimed blocks (the corrupt
    /// locations are randomised and released — a torn or corrupted sector is
    /// never trusted again for this stripe).
    ///
    /// `journaled` writes a `Repair` redo marker before the first repair
    /// write; recovery re-repairs the whole file, which is idempotent. The
    /// recovery pass itself runs unjournaled — its slots may still hold
    /// unprocessed intents a new record must not overwrite — and is safe to
    /// re-crash because repair only ever randomises already-corrupt
    /// locations, so it never pushes a stripe past parity tolerance.
    fn repair_stripe(
        &self,
        g: &mut FileState,
        stripe: u64,
        journaled: bool,
    ) -> Result<StripeRepair, ResilienceError> {
        let keys = self.checksum_keys(&g.open)?;
        let content_key = *g.open.fak.content_key().expect("checked above");
        let per = self.fs.content_bytes_per_block();
        let (k, m) = (self.stripe_cfg.k, self.stripe_cfg.m);
        let range = g.stripes.stripe_data_range(stripe);
        let live = range.clone().count();

        let mut shards: Vec<Option<Vec<u8>>> = vec![None; k + m];
        let mut corrupt: Vec<(usize, BlockId)> = Vec::new();
        for (slot, i) in range.clone().enumerate() {
            let loc = g.open.header.blocks[i as usize];
            let field = self
                .fs
                .codec()
                .read_sealed(self.fs.device(), loc, &content_key)?;
            if keys.mac16(&field) == g.stripes.data_check(i).mac {
                shards[slot] = Some(field);
            } else {
                corrupt.push((slot, loc));
            }
        }
        for shard in shards.iter_mut().take(k).skip(live) {
            *shard = Some(vec![0u8; per]);
        }
        for row in 0..m {
            let entry = *g.stripes.parity_entry(stripe, row);
            let field =
                self.fs
                    .codec()
                    .read_sealed(self.fs.device(), entry.location, &content_key)?;
            if keys.mac16(&field) == entry.check.mac {
                shards[k + row] = Some(field);
            } else {
                corrupt.push((k + row, entry.location));
            }
        }
        if corrupt.is_empty() {
            return Ok(StripeRepair {
                detected: Vec::new(),
                repaired: 0,
                unrecoverable: false,
            });
        }

        self.stats.add_degraded_stripes(1);
        let detected: Vec<BlockId> = corrupt.iter().map(|&(_, loc)| loc).collect();
        if self.codec.reconstruct(&mut shards, per).is_err() {
            self.stats.add_unrecoverable_stripes(1);
            return Ok(StripeRepair {
                detected,
                repaired: 0,
                unrecoverable: true,
            });
        }

        let intent = if journaled {
            self.journal
                .begin(&self.fs, &g.open.path, IntentBody::Repair)?
        } else {
            None
        };
        if intent.is_some() {
            self.stats.count_intent_journaled();
        }

        let mut mref = &self.map;
        for &(slot, old_loc) in &corrupt {
            let new_loc = self.fs.allocate_blocks(&mut mref, 1)?[0];
            let shard = shards[slot].as_ref().expect("reconstructed");
            self.fs.with_rng(|rng| {
                self.fs
                    .codec()
                    .write_sealed(self.fs.device(), new_loc, &content_key, shard, rng)
            })?;
            if slot < k {
                let i = stripe * k as u64 + slot as u64;
                g.open.header.blocks[i as usize] = new_loc;
            } else {
                let mut entry = *g.stripes.parity_entry(stripe, slot - k);
                entry.location = new_loc;
                g.stripes.set_parity_entry(stripe, slot - k, entry);
            }
            // Only release the corrupt location after the reconstructed
            // shard is durably sealed at its new home (write ordering).
            self.fs.randomize_block(old_loc)?;
            self.map.set(old_loc, BlockClass::Dummy);
        }
        self.fs.save(&mut g.open)?;
        self.rewrite_shadow(g)?;
        self.stats.add_blocks_repaired(corrupt.len() as u64);
        Ok(StripeRepair {
            repaired: corrupt.len() as u64,
            detected,
            unrecoverable: false,
        })
    }

    // ----- journal recovery --------------------------------------------

    /// Scan the journal slots and roll every interrupted mutation forward or
    /// back. Runs inside [`ResilientStore::open`] after the file table is
    /// loaded and before the store is handed out; finishes by randomising
    /// every slot, so a crash *during* recovery simply re-runs it (every
    /// per-record action is idempotent).
    fn recover_journal(&self) -> Result<RecoveryReport, ResilienceError> {
        let mut report = RecoveryReport::default();
        if !self.journal.is_enabled() {
            return Ok(report);
        }
        let records = self.journal.scan(&self.fs)?;
        report.intents_found = records.len() as u64;

        // Operations on one path are serialised by its file lock, so among
        // valid records for the same path every one except the highest op-id
        // is certainly complete: keep only the latest per path.
        let mut latest: BTreeMap<String, IntentRecord> = BTreeMap::new();
        for record in records {
            match latest.get(&record.path) {
                Some(prev) if prev.op_id >= record.op_id => report.intents_stale += 1,
                _ => {
                    if latest.insert(record.path.clone(), record).is_some() {
                        report.intents_stale += 1;
                    }
                }
            }
        }

        for (path, record) in latest {
            let outcome = match record.body {
                IntentBody::Create => self.recover_create(&path)?,
                IntentBody::WriteBatch { entries } => self.recover_write_batch(&path, &entries)?,
                IntentBody::Repair => self.recover_repair(&path)?,
                IntentBody::RegistryCheckpoint { shard, generation } => {
                    self.recover_registry_checkpoint(shard, generation)?
                }
            };
            match outcome {
                Recovered::Forward => report.rolled_forward += 1,
                Recovered::Back => report.rolled_back += 1,
                Recovered::Stale => report.intents_stale += 1,
                Recovered::Lost => report.unrecoverable += 1,
            }
        }
        self.journal.clear_all(&self.fs)?;
        self.stats.add_intents_recovered(report.recovered());
        Ok(report)
    }

    /// Undo an uncommitted file creation. Committed means the path reached
    /// the anchor's FAK table; everything about an uncommitted file is
    /// derivable from the master key, so the rollback needs no on-disk state
    /// beyond the intent itself.
    fn recover_create(&self, path: &str) -> Result<Recovered, ResilienceError> {
        if self.files.read().contains_key(path) {
            // The anchor bump landed: the create committed, record is stale.
            return Ok(Recovered::Stale);
        }
        let fak = self.file_fak(path);
        let open = match self.fs.open_file(&fak, path) {
            Ok(open) => open,
            // Header never landed: the create effectively never started.
            // Any sealed blocks it did write are unreferenced and will be
            // reclaimed as dummy space.
            Err(_) => return Ok(Recovered::Stale),
        };
        // Collect everything reachable *before* destroying the header.
        let mut hygiene: Vec<BlockId> = Vec::new();
        hygiene.extend(open.indirect_locations.iter().copied());
        hygiene.extend(open.header.blocks.iter().copied());
        let shadow_fak = self.shadow_fak(path);
        if let Ok(shadow) = self.fs.open_file(&shadow_fak, &Self::shadow_path(path)) {
            if let Ok(encoded) = self.fs.read_file(&shadow) {
                if let Ok(stripes) = StripeMap::decode(&encoded) {
                    hygiene.extend(stripes.parity_locations());
                }
            }
            hygiene.push(shadow.header_location);
            hygiene.extend(shadow.indirect_locations.iter().copied());
            hygiene.extend(shadow.header.blocks.iter().copied());
        }
        // Randomising the header is the undo of the commit point: it is the
        // one block that makes the file discoverable, and it goes first.
        self.fs.randomize_block(open.header_location)?;
        let num_blocks = self.fs.superblock().num_blocks;
        for loc in hygiene {
            // Locations decoded from a partially written shadow map may be
            // garbage; out-of-range ones are simply skipped. Everything here
            // is hygiene — the blocks are unreferenced once the header is
            // gone.
            if loc > 0 && loc < num_blocks {
                self.fs.randomize_block(loc)?;
            }
        }
        Ok(Recovered::Back)
    }

    /// Complete or undo an interrupted batched delta update. Entries were
    /// written in record order with at most one device write in flight at
    /// the power cut, so the walk visits them stripe group by stripe group
    /// (same-stripe entries are adjacent — batch indices ascend): fully
    /// completed groups keep the walk going, the single in-flight group is
    /// resolved to a clean chain position by [`Self::resolve_stripe_group`],
    /// and the walk stops there — groups past the frontier never started,
    /// and after a rollback their recorded parity chain no longer describes
    /// the device.
    fn recover_write_batch(
        &self,
        path: &str,
        entries: &[BlockWriteIntent],
    ) -> Result<Recovered, ResilienceError> {
        let state = match self.file_state(path) {
            Ok(state) => state,
            Err(_) => return Ok(Recovered::Stale),
        };
        let mut g = state.write();

        // The record's tail covers the chunk-closing shadow rewrite; strip it
        // off before stripe grouping (shadow entries have no stripe geometry)
        // and verify it separately once the data frontier is resolved.
        let split = entries
            .iter()
            .position(|e| e.index >= SHADOW_ENTRY_BASE)
            .unwrap_or(entries.len());
        let (entries, shadow_entries) = entries.split_at(split);
        if entries.is_empty() {
            return Ok(Recovered::Stale);
        }

        // Split the record into runs of same-stripe entries, preserving
        // write order.
        let mut groups: Vec<&[BlockWriteIntent]> = Vec::new();
        let mut start = 0;
        for i in 1..=entries.len() {
            if i == entries.len()
                || self.stripe_cfg.stripe_of(entries[i].index)
                    != self.stripe_cfg.stripe_of(entries[start].index)
            {
                groups.push(&entries[start..i]);
                start = i;
            }
        }

        let mut touched = false;
        let mut outcome = Recovered::Back;
        for (gi, group) in groups.iter().enumerate() {
            match self.resolve_stripe_group(&mut g, group)? {
                GroupResolution::Advanced {
                    complete,
                    touched: wrote,
                } => {
                    touched |= wrote;
                    if complete > 0 {
                        outcome = Recovered::Forward;
                    }
                    // The frontier lies inside this group: no later group
                    // ever started.
                    if complete < group.len() {
                        break;
                    }
                }
                GroupResolution::Lost => {
                    outcome = Recovered::Lost;
                    break;
                }
                // Geometry mismatch: a later serialised (therefore complete)
                // operation superseded this record.
                GroupResolution::Stale => {
                    if gi == 0 {
                        outcome = Recovered::Stale;
                    }
                    break;
                }
            }
        }
        if outcome != Recovered::Stale {
            // Bring the on-disk shadow to the resolved map. When the record
            // carries shadow entries, each names a shadow block being
            // rewritten: classify it against the re-derived target and only
            // skip the rewrite when every block already verifies (the cut
            // landed after the shadow write, or before the batch started).
            let mut dirty = touched;
            if !dirty && !shadow_entries.is_empty() {
                let per = self.fs.content_bytes_per_block();
                let shadow_keys = self.checksum_keys(&g.shadow)?;
                let shadow_key = *g.shadow.fak.content_key().expect("checked above");
                let expected = g.stripes.encode();
                for e in shadow_entries {
                    let i = (e.index - SHADOW_ENTRY_BASE) as usize;
                    let stale_geometry = i >= g.shadow.header.num_blocks() as usize
                        || g.shadow.header.blocks[i] != e.data_location
                        || !e.parity.is_empty();
                    if stale_geometry {
                        dirty = true;
                        break;
                    }
                    let start = i * per;
                    let mut want = vec![0u8; per];
                    let chunk =
                        &expected[start.min(expected.len())..expected.len().min(start + per)];
                    want[..chunk.len()].copy_from_slice(chunk);
                    let field = self.fs.codec().read_sealed(
                        self.fs.device(),
                        e.data_location,
                        &shadow_key,
                    )?;
                    if shadow_keys.mac16(&field) != shadow_keys.mac16(&want) {
                        dirty = true;
                        break;
                    }
                }
            }
            if dirty {
                self.rewrite_shadow(&mut g)?;
            }
        }
        Ok(outcome)
    }

    /// Resolve one stripe's run of batch entries after a crash.
    ///
    /// The operation wrote, per entry in order: the entry's data block, then
    /// every parity row folded forward to the chain position *after* that
    /// entry. A power cut is a strict prefix of those writes, so the group's
    /// data blocks hold post-images for a leading run of entries (at most
    /// one block torn mid-write) and the parity rows sit at — or torn
    /// between — the chain positions bracketing that run. The resolve
    /// classifies each group data block against its own recorded pre/post
    /// MACs to find the frontier `complete`, expects every parity row at
    /// chain position `complete`, erases every shard not in that target
    /// state, and reconstructs the erased ones from the survivors
    /// (non-group data blocks are identical in every chain position and are
    /// trusted via their state-independent stripe-map checks). The
    /// stripe-map checks are then aligned with the resolved state; the
    /// caller owns the single shadow rewrite.
    fn resolve_stripe_group(
        &self,
        g: &mut FileState,
        group: &[BlockWriteIntent],
    ) -> Result<GroupResolution, ResilienceError> {
        let (k, m) = (self.stripe_cfg.k, self.stripe_cfg.m);
        let stripe = self.stripe_cfg.stripe_of(group[0].index);
        // Sanity: every entry must describe the file's current geometry;
        // anything else means a later (serialised, therefore complete)
        // operation superseded the record.
        for e in group {
            if e.index >= g.open.header.num_blocks()
                || g.open.header.blocks[e.index as usize] != e.data_location
                || e.parity.len() != m
                || (0..m).any(|row| {
                    g.stripes.parity_entry(stripe, row).location != e.parity[row].location
                })
            {
                return Ok(GroupResolution::Stale);
            }
        }
        let keys = self.checksum_keys(&g.open)?;
        let content_key = *g.open.fak.content_key().expect("checked above");
        let per = self.fs.content_bytes_per_block();

        // Classify each group data block: Some(true) = post-image landed,
        // Some(false) = still pre-image, None = torn.
        let mut data_fields = Vec::with_capacity(group.len());
        let mut data_states: Vec<Option<bool>> = Vec::with_capacity(group.len());
        for e in group {
            let field =
                self.fs
                    .codec()
                    .read_sealed(self.fs.device(), e.data_location, &content_key)?;
            let mac = keys.mac16(&field);
            data_states.push(if mac == e.data_post.mac {
                Some(true)
            } else if mac == e.data_pre.mac {
                Some(false)
            } else {
                None
            });
            data_fields.push(field);
        }
        // The frontier: writes land as a strict prefix, so post-images form
        // a leading run. A block past it that is not a clean pre-image was
        // torn mid-write and gets erased and rolled back.
        let complete = data_states.iter().take_while(|&&s| s == Some(true)).count();

        // Parity target: the chain position after `complete` entries.
        let expected: Vec<BlockCheck> = if complete == 0 {
            group[0].parity.iter().map(|p| p.pre).collect()
        } else {
            group[complete - 1].parity.iter().map(|p| p.post).collect()
        };
        let mut parity_fields = Vec::with_capacity(m);
        let mut parity_ok = Vec::with_capacity(m);
        for (row, exp) in expected.iter().enumerate() {
            let loc = g.stripes.parity_entry(stripe, row).location;
            let field = self
                .fs
                .codec()
                .read_sealed(self.fs.device(), loc, &content_key)?;
            parity_ok.push(keys.mac16(&field) == exp.mac);
            parity_fields.push(field);
        }

        // Build the stripe's shard vector in the target state, erasing every
        // shard that does not match it.
        let range = g.stripes.stripe_data_range(stripe);
        let live = range.clone().count();
        let mut shards: Vec<Option<Vec<u8>>> = vec![None; k + m];
        for (slot, i) in range.clone().enumerate() {
            if let Some(j) = group.iter().position(|e| e.index == i) {
                let want_post = j < complete;
                shards[slot] = (data_states[j] == Some(want_post)).then(|| data_fields[j].clone());
            } else {
                // Bystander: its content is identical at every chain
                // position; trust it if it matches its (state-independent)
                // stripe-map check.
                let loc = g.open.header.blocks[i as usize];
                let field = self
                    .fs
                    .codec()
                    .read_sealed(self.fs.device(), loc, &content_key)?;
                shards[slot] = (keys.mac16(&field) == g.stripes.data_check(i).mac).then_some(field);
            }
        }
        for shard in shards.iter_mut().take(k).skip(live) {
            *shard = Some(vec![0u8; per]);
        }
        for row in 0..m {
            shards[k + row] = parity_ok[row].then(|| parity_fields[row].clone());
        }
        let missing: Vec<usize> = (0..k + m).filter(|&s| shards[s].is_none()).collect();
        if self.codec.reconstruct(&mut shards, per).is_err() {
            self.stats.add_unrecoverable_stripes(1);
            return Ok(GroupResolution::Lost);
        }

        // Rewrite every erased shard in the target state, then make the
        // stripe map agree with it.
        let mut touched = !missing.is_empty();
        for slot in missing {
            let (loc, shard) = if slot < k {
                let i = stripe * k as u64 + slot as u64;
                (
                    g.open.header.blocks[i as usize],
                    shards[slot].as_ref().expect("reconstructed"),
                )
            } else {
                (
                    g.stripes.parity_entry(stripe, slot - k).location,
                    shards[slot].as_ref().expect("reconstructed"),
                )
            };
            self.fs.with_rng(|rng| {
                self.fs
                    .codec()
                    .write_sealed(self.fs.device(), loc, &content_key, shard, rng)
            })?;
        }
        for (j, e) in group.iter().enumerate() {
            let check = if j < complete {
                e.data_post
            } else {
                e.data_pre
            };
            if *g.stripes.data_check(e.index) != check {
                g.stripes.set_data_check(e.index, check);
                touched = true;
            }
        }
        for (row, exp) in expected.iter().enumerate() {
            let mut pe = *g.stripes.parity_entry(stripe, row);
            if pe.check != *exp {
                pe.check = *exp;
                g.stripes.set_parity_entry(stripe, row, pe);
                touched = true;
            }
        }
        Ok(GroupResolution::Advanced { complete, touched })
    }

    /// Redo an interrupted repair: re-verify and re-repair every stripe of
    /// the file. Repair is idempotent and clean stripes are untouched.
    fn recover_repair(&self, path: &str) -> Result<Recovered, ResilienceError> {
        let state = match self.file_state(path) {
            Ok(state) => state,
            Err(_) => return Ok(Recovered::Stale),
        };
        let mut g = state.write();
        let mut lost = false;
        for stripe in 0..g.stripes.num_stripes() {
            lost |= self.repair_stripe(&mut g, stripe, false)?.unrecoverable;
        }
        Ok(if lost {
            Recovered::Lost
        } else {
            Recovered::Forward
        })
    }

    // ----- scrub -------------------------------------------------------

    /// Sweep every managed file: quorum-heal the anchor, MAC-verify every
    /// data and parity block in ranged batches of at most `scrub_batch`
    /// blocks, and reconstruct every degraded stripe.
    pub fn scrub(&self) -> Result<ScrubReport, ResilienceError> {
        let mut report = ScrubReport::default();

        let (_, healed) = VolumeAnchor::read_quorum(self.fs.device(), &self.anchor_key)?;
        report.anchor_replicas_repaired = healed.len() as u64;
        self.stats.add_anchor_repairs(healed.len() as u64);

        let files: Vec<Arc<RwLock<FileState>>> = self.files.read().values().cloned().collect();
        for state in files {
            let mut g = state.write();
            let keys = self.checksum_keys(&g.open)?;
            let content_key = *g.open.fak.content_key().expect("checked above");

            // Every protected location of this file, tagged with its shard
            // identity, sorted by physical position so the sweep can coalesce
            // contiguous runs into ranged reads.
            let mut sites: Vec<(BlockId, ShardRef)> = Vec::new();
            for (i, &loc) in g.open.header.blocks.iter().enumerate() {
                sites.push((loc, ShardRef::Data(i as u64)));
            }
            for stripe in 0..g.stripes.num_stripes() {
                for row in 0..self.stripe_cfg.m {
                    sites.push((
                        g.stripes.parity_entry(stripe, row).location,
                        ShardRef::Parity(stripe, row),
                    ));
                }
            }
            sites.sort_by_key(|&(loc, _)| loc);

            let block_size = self.fs.codec().block_size();
            let mut degraded: BTreeSet<u64> = BTreeSet::new();
            let mut start = 0;
            while start < sites.len() {
                // Extend the run while physically contiguous and under the
                // batch cap.
                let mut end = start + 1;
                while end < sites.len()
                    && end - start < self.scrub_batch
                    && sites[end].0 == sites[end - 1].0 + 1
                {
                    end += 1;
                }
                let run = &sites[start..end];
                let mut buf = vec![0u8; run.len() * block_size];
                self.fs.device().read_blocks(run[0].0, &mut buf)?;
                for (&(_, shard), physical) in run.iter().zip(buf.chunks_exact(block_size)) {
                    let field = self.fs.codec().open(&content_key, physical)?;
                    let (ok, stripe) = match shard {
                        ShardRef::Data(i) => (
                            keys.mac16(&field) == g.stripes.data_check(i).mac,
                            self.stripe_cfg.stripe_of(i),
                        ),
                        ShardRef::Parity(stripe, row) => (
                            keys.mac16(&field) == g.stripes.parity_entry(stripe, row).check.mac,
                            stripe,
                        ),
                    };
                    if !ok {
                        degraded.insert(stripe);
                    }
                }
                report.blocks_checked += run.len() as u64;
                start = end;
            }
            self.stats.add_blocks_checked(sites.len() as u64);

            for stripe in degraded {
                let repair = self.repair_stripe(&mut g, stripe, true)?;
                report.degraded_stripes += 1;
                report.blocks_repaired += repair.repaired;
                report.detected.extend(repair.detected);
                if repair.unrecoverable {
                    report.unrecoverable_stripes += 1;
                }
            }
        }
        self.stats.count_scrub();
        Ok(report)
    }

    // ----- scrub-on-cover-traffic --------------------------------------

    /// Build a scrub cursor over every payload block, in a seeded
    /// pseudo-random order. Feeding it to
    /// [`ResilientStore::dummy_update_batch`] turns the volume's cover
    /// traffic into a background scrub: each pass over the cursor MAC-checks
    /// every hidden block exactly once while the touched-block stream keeps
    /// its uniform look.
    pub fn scrub_cursor(&self, seed: u64) -> ScrubCursor {
        let num = self.fs.superblock().num_blocks;
        let mut order: Vec<BlockId> = (1..num).collect();
        let mut rng = HashDrbg::from_u64(seed);
        // Fisher–Yates with the deterministic DRBG.
        for i in (1..order.len()).rev() {
            let j = rng.gen_range(i as u64 + 1) as usize;
            order.swap(i, j);
        }
        ScrubCursor {
            order,
            pos: AtomicUsize::new(0),
        }
    }

    /// Issue `k` dummy updates, drawing victims from `cursor` when given
    /// (scrub-on-cover-traffic) or uniformly at random otherwise. Every
    /// victim is rewritten with fresh randomness: blocks owned by a managed
    /// file are resealed under their real key — and opportunistically
    /// MAC-verified, with a journaled stripe repair on mismatch — while
    /// unowned blocks are re-randomised. Anchor replicas and journal slots
    /// are skipped in *both* modes, so the two victim streams stay
    /// distributionally comparable.
    ///
    /// Returns the blocks actually rewritten (the observable update stream).
    pub fn dummy_update_batch(
        &self,
        k: usize,
        cursor: Option<&ScrubCursor>,
    ) -> Result<Vec<BlockId>, ResilienceError> {
        let num = self.fs.superblock().num_blocks;
        let victims: Vec<BlockId> = match cursor {
            Some(cursor) => cursor.next_victims(k),
            None => (0..k)
                .map(|_| self.fs.with_rng(|rng| 1 + rng.gen_range(num - 1)))
                .collect(),
        };
        let reserved: BTreeSet<BlockId> = VolumeAnchor::replica_blocks(num)
            .into_iter()
            .chain(self.journal.slots().iter().copied())
            .collect();

        // Owner lookup: which managed file (if any) holds each block, and in
        // what role. Rebuilt per batch; the structures are small.
        enum Role {
            Content(u64),
            Parity(u64, usize),
            HeaderTree,
            ShadowContent,
            ShadowHeaderTree,
        }
        let files: Vec<(String, Arc<RwLock<FileState>>)> = self
            .files
            .read()
            .iter()
            .map(|(p, s)| (p.clone(), Arc::clone(s)))
            .collect();
        let mut owners: BTreeMap<BlockId, (usize, Role)> = BTreeMap::new();
        for (fi, (_, state)) in files.iter().enumerate() {
            let g = state.read();
            for (i, &loc) in g.open.header.blocks.iter().enumerate() {
                owners.insert(loc, (fi, Role::Content(i as u64)));
            }
            for stripe in 0..g.stripes.num_stripes() {
                for row in 0..self.stripe_cfg.m {
                    owners.insert(
                        g.stripes.parity_entry(stripe, row).location,
                        (fi, Role::Parity(stripe, row)),
                    );
                }
            }
            owners.insert(g.open.header_location, (fi, Role::HeaderTree));
            for &loc in &g.open.indirect_locations {
                owners.insert(loc, (fi, Role::HeaderTree));
            }
            for &loc in &g.shadow.header.blocks {
                owners.insert(loc, (fi, Role::ShadowContent));
            }
            owners.insert(g.shadow.header_location, (fi, Role::ShadowHeaderTree));
            for &loc in &g.shadow.indirect_locations {
                owners.insert(loc, (fi, Role::ShadowHeaderTree));
            }
        }

        let mut touched = Vec::with_capacity(victims.len());
        for victim in victims {
            if reserved.contains(&victim) {
                continue;
            }
            match owners.get(&victim) {
                None => self.fs.randomize_block(victim)?,
                Some(&(fi, ref role)) => {
                    let state = &files[fi].1;
                    let g = state.read();
                    let fak = &g.open.fak;
                    match *role {
                        Role::Content(i) => {
                            let key = fak.content_key().expect("managed files have one");
                            let field =
                                self.fs.codec().read_sealed(self.fs.device(), victim, key)?;
                            let keys = self.checksum_keys(&g.open)?;
                            if i < g.stripes.num_data()
                                && keys.mac16(&field) != g.stripes.data_check(i).mac
                            {
                                // Scrub-on-cover-traffic: the dummy update
                                // found silent corruption; heal the stripe.
                                drop(g);
                                let mut w = state.write();
                                let stripe = self.stripe_cfg.stripe_of(i);
                                self.repair_stripe(&mut w, stripe, true)?;
                            } else {
                                self.fs.reseal_block(victim, key)?;
                            }
                        }
                        Role::Parity(stripe, row) => {
                            let key = fak.content_key().expect("managed files have one");
                            let field =
                                self.fs.codec().read_sealed(self.fs.device(), victim, key)?;
                            let keys = self.checksum_keys(&g.open)?;
                            if keys.mac16(&field) != g.stripes.parity_entry(stripe, row).check.mac {
                                drop(g);
                                let mut w = state.write();
                                self.repair_stripe(&mut w, stripe, true)?;
                            } else {
                                self.fs.reseal_block(victim, key)?;
                            }
                        }
                        Role::HeaderTree => {
                            self.fs.reseal_block(victim, fak.header_key())?;
                        }
                        Role::ShadowContent => {
                            let key = g.shadow.fak.content_key().expect("shadow has one");
                            self.fs.reseal_block(victim, key)?;
                        }
                        Role::ShadowHeaderTree => {
                            self.fs.reseal_block(victim, g.shadow.fak.header_key())?;
                        }
                    }
                }
            }
            touched.push(victim);
        }
        Ok(touched)
    }
}

/// A cycling, seeded-shuffle iterator over the volume's payload blocks: the
/// victim stream that lets a scrub pass ride the dummy-update cover traffic.
/// One full cycle visits every payload block exactly once.
pub struct ScrubCursor {
    order: Vec<BlockId>,
    pos: AtomicUsize,
}

impl ScrubCursor {
    /// The next `k` victim blocks, cycling through the shuffled order.
    pub fn next_victims(&self, k: usize) -> Vec<BlockId> {
        (0..k)
            .map(|_| {
                let i = self.pos.fetch_add(1, Ordering::Relaxed) % self.order.len();
                self.order[i]
            })
            .collect()
    }

    /// Blocks per full cycle (the volume's payload block count).
    pub fn cycle_len(&self) -> usize {
        self.order.len()
    }
}

impl steghide::VictimSource for ScrubCursor {
    fn next_victims(&self, k: usize) -> Vec<BlockId> {
        ScrubCursor::next_victims(self, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stegfs_blockdev::{FaultDevice, FaultPlan, MemDevice};

    fn cfg() -> ResilienceConfig {
        ResilienceConfig::default()
            .with_fs(StegFsConfig::default().with_block_size(512))
            .with_stripe(4, 2)
    }

    fn master() -> Key256 {
        Key256::from_passphrase("resilient-owner")
    }

    fn content(len: usize) -> Vec<u8> {
        (0..len).map(|i| (i % 251) as u8).collect()
    }

    fn fresh_store() -> ResilientStore<FaultDevice<MemDevice>> {
        let dev = FaultDevice::new(MemDevice::new(512, 512));
        ResilientStore::format(dev, cfg(), &master(), 7).unwrap()
    }

    #[test]
    fn create_read_roundtrip() {
        let store = fresh_store();
        let data = content(3000);
        store.create_file("/a", &data).unwrap();
        assert_eq!(store.read_file("/a").unwrap(), data);
        assert!(store.stats().reads_verified > 0);
        assert_eq!(store.stats().read_check_failures, 0);
    }

    #[test]
    fn reopen_from_anchor_recovers_everything() {
        let store = fresh_store();
        let a = content(2000);
        let b = content(700);
        store.create_file("/a", &a).unwrap();
        store.create_file("/b", &b).unwrap();
        let device = store.fs.into_device();

        let reopened = ResilientStore::open(device, cfg(), &master(), 8).unwrap();
        assert_eq!(reopened.paths(), vec!["/a".to_string(), "/b".to_string()]);
        assert_eq!(reopened.read_file("/a").unwrap(), a);
        assert_eq!(reopened.read_file("/b").unwrap(), b);
    }

    #[test]
    fn wrong_master_cannot_open() {
        let store = fresh_store();
        store.create_file("/a", &content(100)).unwrap();
        let device = store.fs.into_device();
        assert!(matches!(
            ResilientStore::open(device, cfg(), &Key256::from_passphrase("wrong"), 8),
            Err(ResilienceError::AnchorUnrecoverable(_))
        ));
    }

    #[test]
    fn read_path_repairs_corrupted_block() {
        let store = fresh_store();
        let data = content(4000);
        store.create_file("/a", &data).unwrap();

        let victim = {
            let state = store.file_state("/a").unwrap();
            let g = state.read();
            g.open.header.blocks[2]
        };
        let mut plan = FaultPlan::new(11);
        plan.zero_block(victim);
        store.fs.device().apply_plan(&plan).unwrap();

        assert_eq!(store.read_file("/a").unwrap(), data);
        let stats = store.stats();
        assert_eq!(stats.read_check_failures, 1);
        assert_eq!(stats.blocks_repaired, 1);
        // Repaired onto a fresh block; the old location is dummy again.
        let state = store.file_state("/a").unwrap();
        assert_ne!(state.read().open.header.blocks[2], victim);
        assert_eq!(store.block_map().class(victim), BlockClass::Dummy);
        // A second read is clean.
        assert_eq!(store.read_file("/a").unwrap(), data);
        assert_eq!(store.stats().read_check_failures, 1);
    }

    #[test]
    fn beyond_parity_tolerance_reports_never_lies() {
        let store = fresh_store();
        let data = content(2000); // 5 blocks of 496 → stripes of 4
        store.create_file("/a", &data).unwrap();

        // Corrupt 3 blocks of stripe 0 (m = 2 tolerated).
        let victims = {
            let state = store.file_state("/a").unwrap();
            let g = state.read();
            g.open.header.blocks[..3].to_vec()
        };
        let mut plan = FaultPlan::new(13);
        for v in victims {
            plan.zero_block(v);
        }
        store.fs.device().apply_plan(&plan).unwrap();

        match store.read_file("/a") {
            Err(ResilienceError::Unrecoverable { path, stripes }) => {
                assert_eq!(path, "/a");
                assert_eq!(stripes, vec![0]);
            }
            other => panic!("expected Unrecoverable, got {other:?}"),
        }
        assert_eq!(store.stats().unrecoverable_stripes, 1);
    }

    #[test]
    fn scrub_finds_and_repairs_silent_corruption() {
        let store = fresh_store();
        let data = content(5000);
        store.create_file("/a", &data).unwrap();

        let (victim_data, victim_parity) = {
            let state = store.file_state("/a").unwrap();
            let g = state.read();
            (
                g.open.header.blocks[0],
                g.stripes.parity_entry(1, 0).location,
            )
        };
        let mut plan = FaultPlan::new(17);
        plan.flip_bit(victim_data);
        plan.zero_block(victim_parity);
        let sites = store.fs.device().apply_plan(&plan).unwrap();
        assert_eq!(sites.len(), 2);

        let report = store.scrub().unwrap();
        assert!(report.fully_repaired());
        assert_eq!(report.degraded_stripes, 2);
        assert_eq!(report.blocks_repaired, 2);
        let mut detected = report.detected.clone();
        detected.sort_unstable();
        let mut expected = vec![victim_data, victim_parity];
        expected.sort_unstable();
        assert_eq!(detected, expected);
        assert_eq!(store.read_file("/a").unwrap(), data);

        // Scrub again: clean.
        let report2 = store.scrub().unwrap();
        assert!(report2.is_clean());
    }

    #[test]
    fn scrub_heals_corrupt_anchor_replica() {
        let store = fresh_store();
        store.create_file("/a", &content(300)).unwrap();
        let replica = VolumeAnchor::replica_blocks(512)[1];
        let mut plan = FaultPlan::new(19);
        plan.zero_block(replica);
        store.fs.device().apply_plan(&plan).unwrap();

        let report = store.scrub().unwrap();
        assert_eq!(report.anchor_replicas_repaired, 1);
        // The healed volume reopens fine even if another replica dies next.
        let device = store.fs.into_device();
        let reopened = ResilientStore::open(device, cfg(), &master(), 9).unwrap();
        assert_eq!(reopened.read_file("/a").unwrap(), content(300));
    }

    #[test]
    fn reseal_preserves_parity_relations() {
        let store = fresh_store();
        let data = content(3500);
        store.create_file("/a", &data).unwrap();
        for _ in 0..3 {
            store.reseal_file("/a").unwrap();
        }
        // All ciphertexts changed, but a scrub still finds the volume clean
        // and a degraded read still reconstructs.
        assert!(store.scrub().unwrap().is_clean());
        let victim = {
            let state = store.file_state("/a").unwrap();
            let g = state.read();
            g.open.header.blocks[1]
        };
        let mut plan = FaultPlan::new(23);
        plan.zero_block(victim);
        store.fs.device().apply_plan(&plan).unwrap();
        assert_eq!(store.read_file("/a").unwrap(), data);
    }

    #[test]
    fn delta_parity_update_matches_full_reencode() {
        let store = fresh_store();
        let data = content(4000);
        store.create_file("/a", &data).unwrap();

        let per = store.fs().content_bytes_per_block();
        let new_block = vec![0x5au8; per];
        store.write_block("/a", 1, &new_block).unwrap();

        let mut expected = data.clone();
        expected[per..2 * per].copy_from_slice(&new_block);
        assert_eq!(store.read_file("/a").unwrap(), expected);
        // Parity still reconstructs after the delta update: kill the block
        // we just wrote and read through repair.
        let victim = {
            let state = store.file_state("/a").unwrap();
            let g = state.read();
            g.open.header.blocks[1]
        };
        let mut plan = FaultPlan::new(29);
        plan.zero_block(victim);
        store.fs.device().apply_plan(&plan).unwrap();
        assert_eq!(store.read_file("/a").unwrap(), expected);
        // And the scrub agrees everything is consistent.
        assert!(store.scrub().unwrap().is_clean());
    }

    #[test]
    fn torn_write_mid_update_is_recovered() {
        let store = fresh_store();
        let data = content(4000);
        store.create_file("/a", &data).unwrap();

        // Tear the update's first three scalar writes mid-sector: the intent
        // record's two slot copies (torn journal records self-invalidate;
        // nothing scans them here) and then the data block write.
        let per = store.fs().content_bytes_per_block();
        store.fs.device().arm_partial_scalar_write(100);
        store.fs.device().arm_partial_scalar_write(100);
        store.fs.device().arm_partial_scalar_write(100);
        let new_block = vec![0x77u8; per];
        store.write_block("/a", 0, &new_block).unwrap();

        // The torn block fails its check; parity (updated from the intended
        // delta) reconstructs the *new* content.
        let mut expected = data.clone();
        expected[..per].copy_from_slice(&new_block);
        assert_eq!(store.read_file("/a").unwrap(), expected);
        assert!(store.stats().read_check_failures >= 1);
    }

    #[test]
    fn journal_record_survives_one_zeroed_slot_copy() {
        let store = fresh_store();
        let guard = store
            .journal
            .begin(store.fs(), "/victim", IntentBody::Create)
            .unwrap()
            .unwrap();
        // Leak the guard: the record stays live on disk, as after a crash.
        std::mem::forget(guard);
        let found = store.journal.scan(store.fs()).unwrap();
        assert_eq!(found.len(), 1);

        // Zero every primary copy: the mirrors alone must still carry it.
        let slots: Vec<BlockId> = store.journal.slots().to_vec();
        let mut plan = FaultPlan::new(41);
        for pair in slots.chunks(2) {
            plan.zero_block(pair[0]);
        }
        store.fs.device().apply_plan(&plan).unwrap();
        assert_eq!(store.journal.scan(store.fs()).unwrap(), found);

        // Zero the mirrors as well and the record is (correctly) gone.
        let mut plan = FaultPlan::new(43);
        for pair in slots.chunks(2) {
            if let Some(&mirror) = pair.get(1) {
                plan.zero_block(mirror);
            }
        }
        store.fs.device().apply_plan(&plan).unwrap();
        assert!(store.journal.scan(store.fs()).unwrap().is_empty());
    }

    #[test]
    fn unknown_file_and_duplicate_create() {
        let store = fresh_store();
        assert!(matches!(
            store.read_file("/nope"),
            Err(ResilienceError::UnknownFile(_))
        ));
        store.create_file("/a", &content(10)).unwrap();
        assert!(store.create_file("/a", &content(10)).is_err());
    }

    #[test]
    fn parity_blocks_look_like_free_space() {
        // A parity block and a never-used block are both `IV ‖ CBC bytes`
        // with no plaintext structure; spot-check that parity blocks are not
        // trivially distinguishable (full chi-square analysis lives in the
        // stegfs-analysis integration test).
        let store = fresh_store();
        store.create_file("/a", &content(3000)).unwrap();
        let state = store.file_state("/a").unwrap();
        let g = state.read();
        let loc = g.stripes.parity_locations()[0];
        let mut buf = vec![0u8; 512];
        store.fs.device().read_block(loc, &mut buf).unwrap();
        let mut counts = [0u32; 256];
        for &b in &buf {
            counts[b as usize] += 1;
        }
        assert!(*counts.iter().max().unwrap() < 20);
    }
}
