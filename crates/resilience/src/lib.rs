//! # stegfs-resilience
//!
//! The resilience tier of the reproduction: a steganographic volume that
//! survives silent corruption and torn writes without ever betraying which
//! blocks it is protecting.
//!
//! The problem: the substrate's plausible-deniability design makes ordinary
//! fault tolerance impossible to bolt on. The volume cannot carry an
//! allocation bitmap, a checksum table or a parity log — any plaintext
//! structure that says "these blocks matter" is exactly the evidence a
//! steganographic file system exists to withhold. Meanwhile its *own* cover
//! traffic constantly overwrites blocks, so a single misdirected write
//! silently destroys hidden data with no fsck to notice.
//!
//! The pieces, each shaped to stay inside the steganographic envelope:
//!
//! * [`gf256`] — GF(2⁸) arithmetic with constant-time-built log/exp tables
//!   and per-coefficient multiply tables.
//! * [`ErasureCodec`] — a systematic Cauchy-matrix Reed–Solomon coder:
//!   `m` parity shards per `k` data shards, any `k` survivors reconstruct.
//!   Parity is computed over *plaintext* data fields (reseals re-randomise
//!   ciphertext, so ciphertext parity would go stale on every dummy update)
//!   and the parity shards are sealed and scattered like hidden data.
//! * [`StripeMap`] / [`ChecksumKeys`] — per-file integrity metadata: a cheap
//!   keyed hash verified on every read plus a truncated HMAC verified by
//!   scrub, persisted as a shadow hidden file.
//! * [`VolumeAnchor`] — the 3-way replicated, generation-counted,
//!   slot-MAC'd superblock + sealed FAK table; quorum reads self-heal stale
//!   or corrupt replicas.
//! * [`IntentJournal`] — a deniable write-ahead intent log: sealed,
//!   self-authenticating records in uniformly claimed slot blocks, written
//!   before every multi-block mutation so a power cut leaves the volume
//!   recoverable to exactly the old or the new state — never a partial one.
//! * [`ResilientStore`] — ties it together: striped files, a verify-always
//!   read path that falls back to reconstruction, a delta-parity update
//!   path, journaled mutations with open-time crash recovery, and
//!   [`ResilientStore::scrub`] — a ranged-batch MAC sweep that repairs every
//!   degraded stripe onto freshly claimed blocks and can also ride the cover
//!   traffic via [`ScrubCursor`].
//!
//! The failure model it is tested against lives in `stegfs-blockdev`'s
//! `FaultDevice`: deterministic seeded bit flips, zeroed blocks and torn
//! ranged/scalar writes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod codec;
mod error;
pub mod gf256;
mod journal;
mod scale;
mod stats;
mod store;
mod stripe;
mod superblock;

pub use codec::ErasureCodec;
pub use error::ResilienceError;
pub use journal::{
    BlockWriteIntent, IntentBody, IntentJournal, IntentRecord, ParityIntent, SHADOW_ENTRY_BASE,
};
pub use scale::{RegistryConfig, RegistryStats, REGISTRY_PATH};
pub use stats::{RecoveryReport, ResilienceStats, ScrubReport, SharedResilienceStats};
pub use store::{ResilienceConfig, ResilientStore, ScrubCursor};
pub use stripe::{BlockCheck, ChecksumKeys, ParityEntry, StripeConfig, StripeMap};
pub use superblock::VolumeAnchor;
