//! CBC (Cipher Block Chaining) mode over whole 16-byte blocks.
//!
//! Section 4.1.1 of the paper:
//!
//! > each block contains an initial vector (IV) and a data field. \[...\] its
//! > data field is encrypted by the agent using a CBC (Cipher Block Chaining)
//! > block cipher with the IV as seed. Whenever the agent re-encrypts a block,
//! > it resets the IV so that the content of the whole encrypted block
//! > changes.
//!
//! Storage block payloads are always exact multiples of the AES block size, so
//! no padding scheme is needed; [`CbcCipher`] rejects unaligned buffers
//! instead.

use crate::aes::{BlockCipher, AES_BLOCK_SIZE};

/// Errors returned by CBC operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CbcError {
    /// Input length was not a multiple of the AES block size.
    NotBlockAligned {
        /// Offending input length.
        len: usize,
    },
}

impl core::fmt::Display for CbcError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CbcError::NotBlockAligned { len } => {
                write!(f, "CBC input length {len} is not a multiple of 16")
            }
        }
    }
}

impl std::error::Error for CbcError {}

/// CBC-mode wrapper around any [`BlockCipher`].
pub struct CbcCipher<C: BlockCipher> {
    cipher: C,
}

impl<C: BlockCipher> CbcCipher<C> {
    /// Wrap a block cipher instance.
    pub fn new(cipher: C) -> Self {
        Self { cipher }
    }

    /// Access the underlying block cipher.
    pub fn cipher(&self) -> &C {
        &self.cipher
    }

    /// Encrypt `data` in place under `iv`. `data.len()` must be a multiple of
    /// 16 bytes.
    ///
    /// The whole buffer is processed in place: each 16-byte lane is XOR-chained
    /// as one 128-bit word and handed to the block cipher directly, with no
    /// per-block staging copies.
    pub fn encrypt_in_place(
        &self,
        iv: &[u8; AES_BLOCK_SIZE],
        data: &mut [u8],
    ) -> Result<(), CbcError> {
        if data.len() % AES_BLOCK_SIZE != 0 {
            return Err(CbcError::NotBlockAligned { len: data.len() });
        }
        let mut chain = u128::from_ne_bytes(*iv);
        for block in data.chunks_exact_mut(AES_BLOCK_SIZE) {
            let block: &mut [u8; AES_BLOCK_SIZE] =
                block.try_into().expect("chunks_exact yields 16-byte lanes");
            *block = (u128::from_ne_bytes(*block) ^ chain).to_ne_bytes();
            self.cipher.encrypt_block(block);
            chain = u128::from_ne_bytes(*block);
        }
        Ok(())
    }

    /// Decrypt `data` in place under `iv`.
    ///
    /// Unlike encryption, CBC decryption has no serial dependency between
    /// blocks — every plaintext block is `D(c[i]) ^ c[i-1]` — so the bulk of
    /// the buffer goes through [`BlockCipher::decrypt_blocks`] eight blocks
    /// at a time (saving a copy of the ciphertext first, then applying the
    /// XOR chain afterwards), which lets hardware backends keep their whole
    /// pipeline full. Buffers shorter than eight blocks, and the tail, use
    /// the per-block chained loop.
    pub fn decrypt_in_place(
        &self,
        iv: &[u8; AES_BLOCK_SIZE],
        data: &mut [u8],
    ) -> Result<(), CbcError> {
        if data.len() % AES_BLOCK_SIZE != 0 {
            return Err(CbcError::NotBlockAligned { len: data.len() });
        }
        const WIDE: usize = 8 * AES_BLOCK_SIZE;
        let mut chain = u128::from_ne_bytes(*iv);
        let mut wide = data.chunks_exact_mut(WIDE);
        for chunk in &mut wide {
            let mut saved = [0u8; WIDE];
            saved.copy_from_slice(chunk);
            self.cipher.decrypt_blocks(chunk);
            for (i, block) in chunk.chunks_exact_mut(AES_BLOCK_SIZE).enumerate() {
                let block: &mut [u8; AES_BLOCK_SIZE] =
                    block.try_into().expect("chunks_exact yields 16-byte lanes");
                let prev = if i == 0 {
                    chain
                } else {
                    u128::from_ne_bytes(
                        saved[(i - 1) * AES_BLOCK_SIZE..i * AES_BLOCK_SIZE]
                            .try_into()
                            .expect("16-byte lane"),
                    )
                };
                *block = (u128::from_ne_bytes(*block) ^ prev).to_ne_bytes();
            }
            chain = u128::from_ne_bytes(saved[WIDE - AES_BLOCK_SIZE..].try_into().expect("tail"));
        }
        for block in wide.into_remainder().chunks_exact_mut(AES_BLOCK_SIZE) {
            let block: &mut [u8; AES_BLOCK_SIZE] =
                block.try_into().expect("chunks_exact yields 16-byte lanes");
            let ciphertext = u128::from_ne_bytes(*block);
            self.cipher.decrypt_block(block);
            *block = (u128::from_ne_bytes(*block) ^ chain).to_ne_bytes();
            chain = ciphertext;
        }
        Ok(())
    }

    /// Encrypt `data` into a new vector.
    pub fn encrypt(&self, iv: &[u8; AES_BLOCK_SIZE], data: &[u8]) -> Result<Vec<u8>, CbcError> {
        let mut out = data.to_vec();
        self.encrypt_in_place(iv, &mut out)?;
        Ok(out)
    }

    /// Decrypt `data` into a new vector.
    pub fn decrypt(&self, iv: &[u8; AES_BLOCK_SIZE], data: &[u8]) -> Result<Vec<u8>, CbcError> {
        let mut out = data.to_vec();
        self.decrypt_in_place(iv, &mut out)?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aes::{Aes128, Aes256};

    fn hex_to_bytes(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn nist_sp800_38a_cbc_aes128() {
        // NIST SP 800-38A F.2.1 CBC-AES128.Encrypt
        let key: [u8; 16] = hex_to_bytes("2b7e151628aed2a6abf7158809cf4f3c")
            .try_into()
            .unwrap();
        let iv: [u8; 16] = hex_to_bytes("000102030405060708090a0b0c0d0e0f")
            .try_into()
            .unwrap();
        let plaintext = hex_to_bytes(
            "6bc1bee22e409f96e93d7e117393172a\
             ae2d8a571e03ac9c9eb76fac45af8e51\
             30c81c46a35ce411e5fbc1191a0a52ef\
             f69f2445df4f9b17ad2b417be66c3710",
        );
        let expected = hex_to_bytes(
            "7649abac8119b246cee98e9b12e9197d\
             5086cb9b507219ee95db113a917678b2\
             73bed6b8e3c1743b7116e69e22229516\
             3ff1caa1681fac09120eca307586e1a7",
        );
        let cbc = CbcCipher::new(Aes128::new(&key));
        let ciphertext = cbc.encrypt(&iv, &plaintext).unwrap();
        assert_eq!(ciphertext, expected);
        let decrypted = cbc.decrypt(&iv, &ciphertext).unwrap();
        assert_eq!(decrypted, plaintext);
    }

    #[test]
    fn nist_sp800_38a_cbc_aes256() {
        // NIST SP 800-38A F.2.5 CBC-AES256.Encrypt / F.2.6 Decrypt, all four
        // blocks.
        let key: [u8; 32] =
            hex_to_bytes("603deb1015ca71be2b73aef0857d77811f352c073b6108d72d9810a30914dff4")
                .try_into()
                .unwrap();
        let iv: [u8; 16] = hex_to_bytes("000102030405060708090a0b0c0d0e0f")
            .try_into()
            .unwrap();
        let plaintext = hex_to_bytes(
            "6bc1bee22e409f96e93d7e117393172a\
             ae2d8a571e03ac9c9eb76fac45af8e51\
             30c81c46a35ce411e5fbc1191a0a52ef\
             f69f2445df4f9b17ad2b417be66c3710",
        );
        let expected = hex_to_bytes(
            "f58c4c04d6e5f1ba779eabfb5f7bfbd6\
             9cfc4e967edb808d679f777bc6702c7d\
             39f23369a9d9bacfa530e26304231461\
             b2eb05e2c39be9fcda6c19078c6a9d1b",
        );
        let cbc = CbcCipher::new(Aes256::new(&key));
        let ciphertext = cbc.encrypt(&iv, &plaintext).unwrap();
        assert_eq!(ciphertext, expected);
        assert_eq!(cbc.decrypt(&iv, &ciphertext).unwrap(), plaintext);
    }

    #[test]
    fn changing_iv_changes_every_ciphertext_block() {
        // This property is exactly what makes the paper's dummy updates work:
        // re-encrypting the same plaintext under a fresh IV changes the whole
        // encrypted block.
        let cbc = CbcCipher::new(Aes256::new(&[9u8; 32]));
        let plaintext = vec![0x42u8; 4096];
        let c1 = cbc.encrypt(&[1u8; 16], &plaintext).unwrap();
        let c2 = cbc.encrypt(&[2u8; 16], &plaintext).unwrap();
        assert_eq!(c1.len(), c2.len());
        // Every 16-byte block must differ thanks to chaining.
        for (b1, b2) in c1.chunks(16).zip(c2.chunks(16)) {
            assert_ne!(b1, b2);
        }
        assert_eq!(cbc.decrypt(&[1u8; 16], &c1).unwrap(), plaintext);
        assert_eq!(cbc.decrypt(&[2u8; 16], &c2).unwrap(), plaintext);
    }

    #[test]
    fn unaligned_input_is_rejected() {
        let cbc = CbcCipher::new(Aes256::new(&[0u8; 32]));
        let err = cbc.encrypt(&[0u8; 16], &[0u8; 15]).unwrap_err();
        assert_eq!(err, CbcError::NotBlockAligned { len: 15 });
        let err = cbc.decrypt(&[0u8; 16], &[0u8; 17]).unwrap_err();
        assert_eq!(err, CbcError::NotBlockAligned { len: 17 });
    }

    #[test]
    fn wide_decrypt_matches_serial_decrypt_at_every_length() {
        // Lengths straddling the 8-block wide-path boundary: pure remainder,
        // exactly one wide chunk, wide chunks plus remainder, many chunks.
        let cbc = CbcCipher::new(Aes256::new(&[0xA5u8; 32]));
        let iv = [0x3Cu8; 16];
        for blocks in [0usize, 1, 7, 8, 9, 15, 16, 17, 255, 256] {
            let plaintext: Vec<u8> = (0..blocks * 16).map(|i| (i % 241) as u8).collect();
            let ciphertext = cbc.encrypt(&iv, &plaintext).unwrap();
            // Serial oracle: the textbook one-block-at-a-time chain.
            let mut serial = ciphertext.clone();
            let mut chain = u128::from_ne_bytes(iv);
            for block in serial.chunks_exact_mut(16) {
                let block: &mut [u8; 16] = block.try_into().unwrap();
                let ct = u128::from_ne_bytes(*block);
                cbc.cipher().decrypt_block(block);
                *block = (u128::from_ne_bytes(*block) ^ chain).to_ne_bytes();
                chain = ct;
            }
            assert_eq!(serial, plaintext, "oracle broken at {blocks} blocks");
            let decrypted = cbc.decrypt(&iv, &ciphertext).unwrap();
            assert_eq!(
                decrypted, plaintext,
                "wide path diverged at {blocks} blocks"
            );
        }
    }

    #[test]
    fn wrong_iv_garbles_first_block_only() {
        let cbc = CbcCipher::new(Aes256::new(&[3u8; 32]));
        let plaintext = vec![7u8; 64];
        let ciphertext = cbc.encrypt(&[5u8; 16], &plaintext).unwrap();
        let decrypted = cbc.decrypt(&[6u8; 16], &ciphertext).unwrap();
        assert_ne!(&decrypted[..16], &plaintext[..16]);
        assert_eq!(&decrypted[16..], &plaintext[16..]);
    }
}
