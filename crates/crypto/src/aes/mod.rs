//! FIPS-197 AES block cipher (128- and 256-bit keys), encryption and
//! decryption, behind a runtime-dispatched backend.
//!
//! Three implementations live side by side:
//!
//! * [`ttable`] — the portable fused-T-table cipher (a round is 16 table
//!   lookups and a handful of XORs); compiles and runs everywhere.
//! * `aesni` — hardware AES via `aesenc`/`aesdec`/`aeskeygenassist`
//!   intrinsics (x86-64 only), with batched 8-wide pipelined entry points.
//! * [`reference`] — the original table-free byte-oriented implementation,
//!   kept as the correctness oracle; property tests assert all backends agree
//!   on random keys and blocks.
//!
//! [`Aes128`] and [`Aes256`] snapshot the process-wide selection from
//! [`crate::backend`] at construction time, so which machine code runs is
//! decided once (CPU detection + `STEGFS_CRYPTO_BACKEND` override) and the
//! rest of the workspace stays backend-oblivious. Round keys for every
//! backend live in fixed-size stack arrays — no heap allocation — and are
//! overwritten on drop.

pub mod reference;

#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod aesni;
mod ttable;

use crate::backend::{self, Backend};
use crate::CryptoError;

/// The AES block size in bytes.
pub const AES_BLOCK_SIZE: usize = 16;

/// A block cipher operating on 16-byte blocks.
///
/// Both [`Aes128`] and [`Aes256`] implement this trait; the rest of the
/// workspace is generic over it so tests can plug in lighter ciphers. The
/// batched methods exist so hardware backends can keep several blocks in
/// flight per call — implementors with a pipelined path should override them,
/// and callers with more than a block of data should prefer them.
pub trait BlockCipher: Send + Sync {
    /// Encrypt a single 16-byte block in place.
    fn encrypt_block(&self, block: &mut [u8; AES_BLOCK_SIZE]);
    /// Decrypt a single 16-byte block in place.
    fn decrypt_block(&self, block: &mut [u8; AES_BLOCK_SIZE]);

    /// Encrypt every 16-byte block of `data` in place (ECB over the slice).
    ///
    /// # Panics
    /// Panics if `data.len()` is not a multiple of [`AES_BLOCK_SIZE`].
    fn encrypt_blocks(&self, data: &mut [u8]) {
        assert_eq!(
            data.len() % AES_BLOCK_SIZE,
            0,
            "data must be 16-byte blocks"
        );
        for block in data.chunks_exact_mut(AES_BLOCK_SIZE) {
            self.encrypt_block(block.try_into().expect("16-byte chunks"));
        }
    }

    /// Decrypt every 16-byte block of `data` in place (ECB over the slice).
    ///
    /// # Panics
    /// Panics if `data.len()` is not a multiple of [`AES_BLOCK_SIZE`].
    fn decrypt_blocks(&self, data: &mut [u8]) {
        assert_eq!(
            data.len() % AES_BLOCK_SIZE,
            0,
            "data must be 16-byte blocks"
        );
        for block in data.chunks_exact_mut(AES_BLOCK_SIZE) {
            self.decrypt_block(block.try_into().expect("16-byte chunks"));
        }
    }
}

// The blanket impls must forward the batched methods explicitly — falling
// back to the trait defaults here would silently strip the pipelined path
// from every cipher reaching CBC through `&C` or the schedule cache's
// `Arc<Aes256>`.
impl<C: BlockCipher + ?Sized> BlockCipher for &C {
    fn encrypt_block(&self, block: &mut [u8; AES_BLOCK_SIZE]) {
        (**self).encrypt_block(block);
    }

    fn decrypt_block(&self, block: &mut [u8; AES_BLOCK_SIZE]) {
        (**self).decrypt_block(block);
    }

    fn encrypt_blocks(&self, data: &mut [u8]) {
        (**self).encrypt_blocks(data);
    }

    fn decrypt_blocks(&self, data: &mut [u8]) {
        (**self).decrypt_blocks(data);
    }
}

impl<C: BlockCipher + ?Sized> BlockCipher for std::sync::Arc<C> {
    fn encrypt_block(&self, block: &mut [u8; AES_BLOCK_SIZE]) {
        (**self).encrypt_block(block);
    }

    fn decrypt_block(&self, block: &mut [u8; AES_BLOCK_SIZE]) {
        (**self).decrypt_block(block);
    }

    fn encrypt_blocks(&self, data: &mut [u8]) {
        (**self).encrypt_blocks(data);
    }

    fn decrypt_blocks(&self, data: &mut [u8]) {
        (**self).decrypt_blocks(data);
    }
}

pub(crate) const SBOX: [u8; 256] = build_sbox();
pub(crate) const INV_SBOX: [u8; 256] = build_inv_sbox();

// Precomputed GF(2^8) multiplication tables for the MixColumns coefficients;
// computed at compile time so both implementations are pure table lookups.
pub(crate) const MUL2: [u8; 256] = build_mul_table(2);
pub(crate) const MUL3: [u8; 256] = build_mul_table(3);
pub(crate) const MUL9: [u8; 256] = build_mul_table(9);
pub(crate) const MUL11: [u8; 256] = build_mul_table(11);
pub(crate) const MUL13: [u8; 256] = build_mul_table(13);
pub(crate) const MUL14: [u8; 256] = build_mul_table(14);

const fn build_mul_table(factor: u8) -> [u8; 256] {
    let mut table = [0u8; 256];
    let mut i = 0;
    while i < 256 {
        table[i] = gf_mul(i as u8, factor);
        i += 1;
    }
    table
}

/// Multiply in GF(2^8) with the AES reduction polynomial 0x11b.
pub(crate) const fn gf_mul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    let mut i = 0;
    while i < 8 {
        if b & 1 != 0 {
            p ^= a;
        }
        let hi = a & 0x80;
        a <<= 1;
        if hi != 0 {
            a ^= 0x1b;
        }
        b >>= 1;
        i += 1;
    }
    p
}

const fn gf_inv(a: u8) -> u8 {
    // Brute-force inverse; runs at compile time only.
    if a == 0 {
        return 0;
    }
    let mut x = 1u16;
    while x < 256 {
        if gf_mul(a, x as u8) == 1 {
            return x as u8;
        }
        x += 1;
    }
    0
}

const fn build_sbox() -> [u8; 256] {
    let mut sbox = [0u8; 256];
    let mut i = 0;
    while i < 256 {
        let inv = gf_inv(i as u8);
        // Affine transformation.
        let mut x = inv;
        let mut res = inv;
        let mut c = 0;
        while c < 4 {
            x = x.rotate_left(1);
            res ^= x;
            c += 1;
        }
        sbox[i] = res ^ 0x63;
        i += 1;
    }
    sbox
}

const fn build_inv_sbox() -> [u8; 256] {
    let sbox = build_sbox();
    let mut inv = [0u8; 256];
    let mut i = 0;
    while i < 256 {
        inv[sbox[i] as usize] = i as u8;
        i += 1;
    }
    inv
}

pub(crate) const RCON: [u8; 15] = [
    0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36, 0x6c, 0xd8, 0xab, 0x4d, 0x9a,
];

/// One backend's expanded schedule. The enum tag is the per-instance snapshot
/// of the process-wide selection; taken at construction so an instance's
/// behaviour never changes mid-flight even if [`backend::force`] runs later.
#[derive(Clone)]
enum Aes128Inner {
    TTable(ttable::Aes128),
    #[cfg(target_arch = "x86_64")]
    AesNi(aesni::Aes128Ni),
}

#[derive(Clone)]
enum Aes256Inner {
    TTable(ttable::Aes256),
    #[cfg(target_arch = "x86_64")]
    AesNi(aesni::Aes256Ni),
}

/// AES with a 128-bit key (10 rounds).
#[derive(Clone)]
pub struct Aes128 {
    inner: Aes128Inner,
}

/// AES with a 256-bit key (14 rounds). This is the cipher used throughout the
/// reproduction, matching the paper's choice of AES for the block cipher.
#[derive(Clone)]
pub struct Aes256 {
    inner: Aes256Inner,
}

macro_rules! dispatcher_impl {
    ($name:ident, $inner:ident, $ttable:ty, $aesni:ty, $keylen:expr) => {
        impl $name {
            /// Construct a cipher on the active backend (see [`crate::backend`]).
            /// Allocation-free.
            pub fn new(key: &[u8; $keylen]) -> Self {
                Self::with_backend(key.as_slice(), backend::active())
                    .expect("active backend is always available")
            }

            /// Construct from a slice on the active backend, rejecting wrong
            /// key lengths with a typed error.
            pub fn from_slice(key: &[u8]) -> Result<Self, CryptoError> {
                Self::with_backend(key, backend::active())
            }

            /// Construct on an explicitly chosen backend. Fails with
            /// [`CryptoError::BackendUnavailable`] if this CPU cannot run it,
            /// or [`CryptoError::BadKeyLength`] for a wrong-sized key. Used by
            /// the cross-backend equivalence suites; production code should
            /// use [`Self::new`] and the process-wide selection.
            pub fn with_backend(key: &[u8], backend: Backend) -> Result<Self, CryptoError> {
                if !backend.is_available() {
                    return Err(CryptoError::BackendUnavailable {
                        backend: backend.name(),
                    });
                }
                let inner = match backend {
                    Backend::Portable => $inner::TTable(<$ttable>::from_slice(key)?),
                    #[cfg(target_arch = "x86_64")]
                    Backend::AesNi => {
                        let key: &[u8; $keylen] =
                            key.try_into().map_err(|_| CryptoError::BadKeyLength {
                                expected: $keylen,
                                got: key.len(),
                            })?;
                        $inner::AesNi(<$aesni>::new(key))
                    }
                    #[cfg(not(target_arch = "x86_64"))]
                    Backend::AesNi => unreachable!("checked is_available above"),
                };
                Ok(Self { inner })
            }

            /// Which backend this instance snapshotted at construction.
            pub fn backend(&self) -> Backend {
                match &self.inner {
                    $inner::TTable(_) => Backend::Portable,
                    #[cfg(target_arch = "x86_64")]
                    $inner::AesNi(_) => Backend::AesNi,
                }
            }
        }

        impl BlockCipher for $name {
            #[inline]
            fn encrypt_block(&self, block: &mut [u8; AES_BLOCK_SIZE]) {
                match &self.inner {
                    $inner::TTable(c) => c.encrypt_block(block),
                    #[cfg(target_arch = "x86_64")]
                    $inner::AesNi(c) => c.encrypt_block(block),
                }
            }

            #[inline]
            fn decrypt_block(&self, block: &mut [u8; AES_BLOCK_SIZE]) {
                match &self.inner {
                    $inner::TTable(c) => c.decrypt_block(block),
                    #[cfg(target_arch = "x86_64")]
                    $inner::AesNi(c) => c.decrypt_block(block),
                }
            }

            #[inline]
            fn encrypt_blocks(&self, data: &mut [u8]) {
                assert_eq!(
                    data.len() % AES_BLOCK_SIZE,
                    0,
                    "data must be 16-byte blocks"
                );
                match &self.inner {
                    $inner::TTable(c) => {
                        for block in data.chunks_exact_mut(AES_BLOCK_SIZE) {
                            c.encrypt_block(block.try_into().expect("16-byte chunks"));
                        }
                    }
                    #[cfg(target_arch = "x86_64")]
                    $inner::AesNi(c) => c.encrypt_blocks(data),
                }
            }

            #[inline]
            fn decrypt_blocks(&self, data: &mut [u8]) {
                assert_eq!(
                    data.len() % AES_BLOCK_SIZE,
                    0,
                    "data must be 16-byte blocks"
                );
                match &self.inner {
                    $inner::TTable(c) => {
                        for block in data.chunks_exact_mut(AES_BLOCK_SIZE) {
                            c.decrypt_block(block.try_into().expect("16-byte chunks"));
                        }
                    }
                    #[cfg(target_arch = "x86_64")]
                    $inner::AesNi(c) => c.decrypt_blocks(data),
                }
            }
        }
    };
}

dispatcher_impl!(Aes128, Aes128Inner, ttable::Aes128, aesni::Aes128Ni, 16);
dispatcher_impl!(Aes256, Aes256Inner, ttable::Aes256, aesni::Aes256Ni, 32);

#[cfg(test)]
mod tests {
    use super::*;

    fn hex_to_bytes(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn sbox_matches_known_values() {
        // Spot-check values from the FIPS-197 S-box table.
        assert_eq!(SBOX[0x00], 0x63);
        assert_eq!(SBOX[0x01], 0x7c);
        assert_eq!(SBOX[0x53], 0xed);
        assert_eq!(SBOX[0xff], 0x16);
        assert_eq!(INV_SBOX[0x63], 0x00);
        assert_eq!(INV_SBOX[0x16], 0xff);
    }

    #[test]
    fn gf_mul_known_products() {
        assert_eq!(gf_mul(0x57, 0x83), 0xc1);
        assert_eq!(gf_mul(0x57, 0x13), 0xfe);
    }

    #[test]
    fn aes128_fips197_vector() {
        // FIPS-197 Appendix B.
        let key: [u8; 16] = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let plaintext: [u8; 16] = [
            0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
            0x07, 0x34,
        ];
        let expected: [u8; 16] = [
            0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a,
            0x0b, 0x32,
        ];
        let cipher = Aes128::new(&key);
        let mut block = plaintext;
        cipher.encrypt_block(&mut block);
        assert_eq!(block, expected);
        cipher.decrypt_block(&mut block);
        assert_eq!(block, plaintext);
    }

    #[test]
    fn aes128_fips197_appendix_c1() {
        // FIPS-197 Appendix C.1 example vectors, both directions.
        let key: [u8; 16] = hex_to_bytes("000102030405060708090a0b0c0d0e0f")
            .try_into()
            .unwrap();
        let plaintext: [u8; 16] = hex_to_bytes("00112233445566778899aabbccddeeff")
            .try_into()
            .unwrap();
        let expected: [u8; 16] = hex_to_bytes("69c4e0d86a7b0430d8cdb78070b4c55a")
            .try_into()
            .unwrap();
        let cipher = Aes128::new(&key);
        let mut block = plaintext;
        cipher.encrypt_block(&mut block);
        assert_eq!(block, expected);
        cipher.decrypt_block(&mut block);
        assert_eq!(block, plaintext);
    }

    #[test]
    fn aes256_fips197_appendix_c3() {
        // FIPS-197 Appendix C.3 example vectors.
        let key: [u8; 32] =
            hex_to_bytes("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f")
                .try_into()
                .unwrap();
        let plaintext: [u8; 16] = hex_to_bytes("00112233445566778899aabbccddeeff")
            .try_into()
            .unwrap();
        let expected: [u8; 16] = hex_to_bytes("8ea2b7ca516745bfeafc49904b496089")
            .try_into()
            .unwrap();
        let cipher = Aes256::new(&key);
        let mut block = plaintext;
        cipher.encrypt_block(&mut block);
        assert_eq!(block, expected);
        cipher.decrypt_block(&mut block);
        assert_eq!(block, plaintext);
    }

    #[test]
    fn sp800_38a_ecb_aes128_known_answers() {
        // NIST SP 800-38A F.1.1 ECB-AES128.Encrypt, all four blocks.
        let key: [u8; 16] = hex_to_bytes("2b7e151628aed2a6abf7158809cf4f3c")
            .try_into()
            .unwrap();
        let cipher = Aes128::new(&key);
        let vectors = [
            (
                "6bc1bee22e409f96e93d7e117393172a",
                "3ad77bb40d7a3660a89ecaf32466ef97",
            ),
            (
                "ae2d8a571e03ac9c9eb76fac45af8e51",
                "f5d3d58503b9699de785895a96fdbaaf",
            ),
            (
                "30c81c46a35ce411e5fbc1191a0a52ef",
                "43b1cd7f598ece23881b00e3ed030688",
            ),
            (
                "f69f2445df4f9b17ad2b417be66c3710",
                "7b0c785e27e8ad3f8223207104725dd4",
            ),
        ];
        for (pt, ct) in vectors {
            let mut block: [u8; 16] = hex_to_bytes(pt).try_into().unwrap();
            cipher.encrypt_block(&mut block);
            assert_eq!(block.to_vec(), hex_to_bytes(ct), "plaintext {pt}");
            cipher.decrypt_block(&mut block);
            assert_eq!(block.to_vec(), hex_to_bytes(pt), "ciphertext {ct}");
        }
    }

    #[test]
    fn sp800_38a_ecb_aes256_known_answers() {
        // NIST SP 800-38A F.1.5 ECB-AES256.Encrypt, all four blocks.
        let key: [u8; 32] =
            hex_to_bytes("603deb1015ca71be2b73aef0857d77811f352c073b6108d72d9810a30914dff4")
                .try_into()
                .unwrap();
        let cipher = Aes256::new(&key);
        let vectors = [
            (
                "6bc1bee22e409f96e93d7e117393172a",
                "f3eed1bdb5d2a03c064b5a7e3db181f8",
            ),
            (
                "ae2d8a571e03ac9c9eb76fac45af8e51",
                "591ccb10d410ed26dc5ba74a31362870",
            ),
            (
                "30c81c46a35ce411e5fbc1191a0a52ef",
                "b6ed21b99ca6f4f9f153e7b1beafed1d",
            ),
            (
                "f69f2445df4f9b17ad2b417be66c3710",
                "23304b7a39f9f3ff067d8d8f9e24ecc7",
            ),
        ];
        for (pt, ct) in vectors {
            let mut block: [u8; 16] = hex_to_bytes(pt).try_into().unwrap();
            cipher.encrypt_block(&mut block);
            assert_eq!(block.to_vec(), hex_to_bytes(ct), "plaintext {pt}");
            cipher.decrypt_block(&mut block);
            assert_eq!(block.to_vec(), hex_to_bytes(pt), "ciphertext {ct}");
        }
    }

    #[test]
    fn from_slice_rejects_wrong_lengths() {
        assert!(Aes128::from_slice(&[0u8; 16]).is_ok());
        assert!(Aes256::from_slice(&[0u8; 32]).is_ok());
        for len in [0usize, 15, 17, 24, 31, 33, 64] {
            let key = vec![0u8; len];
            if len != 16 {
                assert!(matches!(
                    Aes128::from_slice(&key),
                    Err(CryptoError::BadKeyLength {
                        expected: 16,
                        got
                    }) if got == len
                ));
            }
            if len != 32 {
                assert!(matches!(
                    Aes256::from_slice(&key),
                    Err(CryptoError::BadKeyLength {
                        expected: 32,
                        got
                    }) if got == len
                ));
            }
        }
    }

    #[test]
    fn with_backend_rejects_wrong_lengths_on_every_backend() {
        for b in [Backend::Portable, Backend::AesNi] {
            if !b.is_available() {
                continue;
            }
            assert!(matches!(
                Aes256::with_backend(&[0u8; 31], b),
                Err(CryptoError::BadKeyLength {
                    expected: 32,
                    got: 31
                })
            ));
            assert!(matches!(
                Aes128::with_backend(&[0u8; 17], b),
                Err(CryptoError::BadKeyLength {
                    expected: 16,
                    got: 17
                })
            ));
        }
    }

    #[test]
    fn matches_reference_implementation() {
        // Pseudo-random keys/blocks through the *active* backend; the
        // exhaustive cross-backend comparison lives in tests/backends.rs and
        // tests/proptests.rs.
        let mut x = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for _ in 0..64 {
            let mut key = [0u8; 32];
            for chunk in key.chunks_exact_mut(8) {
                chunk.copy_from_slice(&next().to_be_bytes());
            }
            let mut block = [0u8; 16];
            for chunk in block.chunks_exact_mut(8) {
                chunk.copy_from_slice(&next().to_be_bytes());
            }

            let fast = Aes256::new(&key);
            let slow = reference::Aes256::new(&key);
            let mut a = block;
            let mut b = block;
            fast.encrypt_block(&mut a);
            slow.encrypt_block(&mut b);
            assert_eq!(a, b, "encrypt mismatch");
            fast.decrypt_block(&mut a);
            slow.decrypt_block(&mut b);
            assert_eq!(a, b, "decrypt mismatch");
            assert_eq!(a, block);

            let key128: [u8; 16] = key[..16].try_into().unwrap();
            let fast = Aes128::new(&key128);
            let slow = reference::Aes128::new(&key128);
            let mut a = block;
            let mut b = block;
            fast.encrypt_block(&mut a);
            slow.encrypt_block(&mut b);
            assert_eq!(a, b, "encrypt mismatch (128)");
        }
    }

    #[test]
    fn aes256_roundtrip_many_blocks() {
        let key = [7u8; 32];
        let cipher = Aes256::new(&key);
        for i in 0..64u8 {
            let original = [i; 16];
            let mut block = original;
            cipher.encrypt_block(&mut block);
            assert_ne!(block, original, "encryption must change the block");
            cipher.decrypt_block(&mut block);
            assert_eq!(block, original);
        }
    }

    #[test]
    fn different_keys_produce_different_ciphertexts() {
        let c1 = Aes256::new(&[1u8; 32]);
        let c2 = Aes256::new(&[2u8; 32]);
        let mut b1 = [0u8; 16];
        let mut b2 = [0u8; 16];
        c1.encrypt_block(&mut b1);
        c2.encrypt_block(&mut b2);
        assert_ne!(b1, b2);
    }

    #[test]
    fn batched_api_matches_per_block_api() {
        // Both key sizes, every available backend, including an odd block
        // count that exercises wide chunks plus remainder.
        for b in [Backend::Portable, Backend::AesNi] {
            if !b.is_available() {
                continue;
            }
            let cipher = Aes256::with_backend(&[3u8; 32], b).unwrap();
            let mut batched: Vec<u8> = (0..13 * 16).map(|i| (i * 7 % 256) as u8).collect();
            let mut single = batched.clone();
            cipher.encrypt_blocks(&mut batched);
            for block in single.chunks_exact_mut(16) {
                cipher.encrypt_block(block.try_into().unwrap());
            }
            assert_eq!(batched, single, "encrypt_blocks diverged on {}", b.name());
            cipher.decrypt_blocks(&mut batched);
            for block in single.chunks_exact_mut(16) {
                cipher.decrypt_block(block.try_into().unwrap());
            }
            assert_eq!(batched, single, "decrypt_blocks diverged on {}", b.name());
        }
    }

    #[test]
    #[should_panic(expected = "16-byte blocks")]
    fn batched_api_rejects_ragged_lengths() {
        let cipher = Aes256::new(&[0u8; 32]);
        let mut data = vec![0u8; 24];
        cipher.encrypt_blocks(&mut data);
    }

    #[test]
    fn backend_accessor_reports_construction_backend() {
        let portable = Aes256::with_backend(&[0u8; 32], Backend::Portable).unwrap();
        assert_eq!(portable.backend(), Backend::Portable);
        assert_eq!(Aes256::new(&[0u8; 32]).backend(), backend::active());
    }

    #[test]
    fn blanket_impls_delegate() {
        let cipher = Aes256::new(&[5u8; 32]);
        let mut direct = [9u8; 16];
        cipher.encrypt_block(&mut direct);

        let via_ref = &cipher;
        let mut b = [9u8; 16];
        via_ref.encrypt_block(&mut b);
        assert_eq!(b, direct);

        let via_arc = std::sync::Arc::new(Aes256::new(&[5u8; 32]));
        let mut b = [9u8; 16];
        via_arc.encrypt_block(&mut b);
        assert_eq!(b, direct);
        via_arc.decrypt_block(&mut b);
        assert_eq!(b, [9u8; 16]);

        // The batched methods must also delegate (not fall back to the trait
        // defaults, which would bypass hardware pipelining through Arc).
        let mut batched = vec![9u8; 32];
        via_arc.encrypt_blocks(&mut batched);
        assert_eq!(&batched[..16], &direct);
        via_arc.decrypt_blocks(&mut batched);
        assert_eq!(batched, vec![9u8; 32]);
    }
}
