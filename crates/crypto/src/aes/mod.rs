//! FIPS-197 AES block cipher (128- and 256-bit keys), encryption and
//! decryption.
//!
//! The hot path is a word-oriented implementation built on fused T-tables:
//! each of the four 256×`u32` encryption tables combines SubBytes, ShiftRows
//! and MixColumns into a single lookup (and the four decryption tables fuse
//! the inverse transformations), so a round is 16 table lookups and a handful
//! of XORs instead of dozens of byte operations. All tables are computed at
//! compile time, and the round keys live in fixed-size stack arrays, so
//! constructing an [`Aes128`] or [`Aes256`] performs no heap allocation.
//!
//! The original table-free byte-oriented implementation is preserved in
//! [`reference`]; property tests assert both agree on random keys and blocks.

pub mod reference;

use crate::CryptoError;

/// The AES block size in bytes.
pub const AES_BLOCK_SIZE: usize = 16;

/// A block cipher operating on 16-byte blocks.
///
/// Both [`Aes128`] and [`Aes256`] implement this trait; the rest of the
/// workspace is generic over it so tests can plug in lighter ciphers.
pub trait BlockCipher: Send + Sync {
    /// Encrypt a single 16-byte block in place.
    fn encrypt_block(&self, block: &mut [u8; AES_BLOCK_SIZE]);
    /// Decrypt a single 16-byte block in place.
    fn decrypt_block(&self, block: &mut [u8; AES_BLOCK_SIZE]);
}

impl<C: BlockCipher + ?Sized> BlockCipher for &C {
    fn encrypt_block(&self, block: &mut [u8; AES_BLOCK_SIZE]) {
        (**self).encrypt_block(block);
    }

    fn decrypt_block(&self, block: &mut [u8; AES_BLOCK_SIZE]) {
        (**self).decrypt_block(block);
    }
}

impl<C: BlockCipher + ?Sized> BlockCipher for std::sync::Arc<C> {
    fn encrypt_block(&self, block: &mut [u8; AES_BLOCK_SIZE]) {
        (**self).encrypt_block(block);
    }

    fn decrypt_block(&self, block: &mut [u8; AES_BLOCK_SIZE]) {
        (**self).decrypt_block(block);
    }
}

pub(crate) const SBOX: [u8; 256] = build_sbox();
pub(crate) const INV_SBOX: [u8; 256] = build_inv_sbox();

// Precomputed GF(2^8) multiplication tables for the MixColumns coefficients;
// computed at compile time so both implementations are pure table lookups.
pub(crate) const MUL2: [u8; 256] = build_mul_table(2);
pub(crate) const MUL3: [u8; 256] = build_mul_table(3);
pub(crate) const MUL9: [u8; 256] = build_mul_table(9);
pub(crate) const MUL11: [u8; 256] = build_mul_table(11);
pub(crate) const MUL13: [u8; 256] = build_mul_table(13);
pub(crate) const MUL14: [u8; 256] = build_mul_table(14);

const fn build_mul_table(factor: u8) -> [u8; 256] {
    let mut table = [0u8; 256];
    let mut i = 0;
    while i < 256 {
        table[i] = gf_mul(i as u8, factor);
        i += 1;
    }
    table
}

/// Multiply in GF(2^8) with the AES reduction polynomial 0x11b.
pub(crate) const fn gf_mul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    let mut i = 0;
    while i < 8 {
        if b & 1 != 0 {
            p ^= a;
        }
        let hi = a & 0x80;
        a <<= 1;
        if hi != 0 {
            a ^= 0x1b;
        }
        b >>= 1;
        i += 1;
    }
    p
}

const fn gf_inv(a: u8) -> u8 {
    // Brute-force inverse; runs at compile time only.
    if a == 0 {
        return 0;
    }
    let mut x = 1u16;
    while x < 256 {
        if gf_mul(a, x as u8) == 1 {
            return x as u8;
        }
        x += 1;
    }
    0
}

const fn build_sbox() -> [u8; 256] {
    let mut sbox = [0u8; 256];
    let mut i = 0;
    while i < 256 {
        let inv = gf_inv(i as u8);
        // Affine transformation.
        let mut x = inv;
        let mut res = inv;
        let mut c = 0;
        while c < 4 {
            x = x.rotate_left(1);
            res ^= x;
            c += 1;
        }
        sbox[i] = res ^ 0x63;
        i += 1;
    }
    sbox
}

const fn build_inv_sbox() -> [u8; 256] {
    let sbox = build_sbox();
    let mut inv = [0u8; 256];
    let mut i = 0;
    while i < 256 {
        inv[sbox[i] as usize] = i as u8;
        i += 1;
    }
    inv
}

pub(crate) const RCON: [u8; 15] = [
    0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36, 0x6c, 0xd8, 0xab, 0x4d, 0x9a,
];

/// Fused encryption table: `TE0[x]` is the MixColumns image of the column
/// `(S[x], 0, 0, 0)`, i.e. the big-endian word `(2·S[x], S[x], S[x], 3·S[x])`.
/// `TE1..TE3` are byte rotations of `TE0` covering the other three rows, which
/// is exactly where ShiftRows lands each state byte.
const TE0: [u32; 256] = build_te0();
const TE1: [u32; 256] = rotate_table(&TE0, 8);
const TE2: [u32; 256] = rotate_table(&TE0, 16);
const TE3: [u32; 256] = rotate_table(&TE0, 24);

/// Fused decryption table: `TD0[x]` is the InvMixColumns image of the column
/// `(Si[x], 0, 0, 0)` — the word `(14·Si[x], 9·Si[x], 13·Si[x], 11·Si[x])`.
const TD0: [u32; 256] = build_td0();
const TD1: [u32; 256] = rotate_table(&TD0, 8);
const TD2: [u32; 256] = rotate_table(&TD0, 16);
const TD3: [u32; 256] = rotate_table(&TD0, 24);

const fn build_te0() -> [u32; 256] {
    let mut t = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let s = SBOX[i];
        t[i] = ((MUL2[s as usize] as u32) << 24)
            | ((s as u32) << 16)
            | ((s as u32) << 8)
            | (MUL3[s as usize] as u32);
        i += 1;
    }
    t
}

const fn build_td0() -> [u32; 256] {
    let mut t = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let s = INV_SBOX[i] as usize;
        t[i] = ((MUL14[s] as u32) << 24)
            | ((MUL9[s] as u32) << 16)
            | ((MUL13[s] as u32) << 8)
            | (MUL11[s] as u32);
        i += 1;
    }
    t
}

const fn rotate_table(base: &[u32; 256], bits: u32) -> [u32; 256] {
    let mut t = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        t[i] = base[i].rotate_right(bits);
        i += 1;
    }
    t
}

#[inline]
fn sub_word(w: u32) -> u32 {
    ((SBOX[(w >> 24) as usize] as u32) << 24)
        | ((SBOX[((w >> 16) & 0xff) as usize] as u32) << 16)
        | ((SBOX[((w >> 8) & 0xff) as usize] as u32) << 8)
        | (SBOX[(w & 0xff) as usize] as u32)
}

/// InvMixColumns of one big-endian column word; applied to the middle rounds
/// of the decryption schedule so decryption can use the fused `TD` tables
/// (the "equivalent inverse cipher" of FIPS-197 Section 5.3.5).
#[inline]
fn inv_mix_word(w: u32) -> u32 {
    let [a0, a1, a2, a3] = w.to_be_bytes();
    let (a0, a1, a2, a3) = (a0 as usize, a1 as usize, a2 as usize, a3 as usize);
    u32::from_be_bytes([
        MUL14[a0] ^ MUL11[a1] ^ MUL13[a2] ^ MUL9[a3],
        MUL9[a0] ^ MUL14[a1] ^ MUL11[a2] ^ MUL13[a3],
        MUL13[a0] ^ MUL9[a1] ^ MUL14[a2] ^ MUL11[a3],
        MUL11[a0] ^ MUL13[a1] ^ MUL9[a2] ^ MUL14[a3],
    ])
}

/// Expanded round keys for both directions, in fixed-size stack arrays
/// (`W = 4 * (rounds + 1)` words). Construction never touches the heap.
#[derive(Clone)]
struct Schedule<const W: usize> {
    enc: [u32; W],
    dec: [u32; W],
}

impl<const W: usize> Schedule<W> {
    /// FIPS-197 key expansion into both directions' round keys. The key
    /// length is checked once here with a typed error; nothing downstream can
    /// panic on a short slice.
    fn expand(key: &[u8]) -> Result<Self, CryptoError> {
        let nk = match W {
            44 => 4, // AES-128: 4-word key, 10 rounds, 44 schedule words.
            60 => 8, // AES-256: 8-word key, 14 rounds, 60 schedule words.
            _ => unreachable!("unsupported schedule size"),
        };
        if key.len() != nk * 4 {
            return Err(CryptoError::BadKeyLength {
                expected: nk * 4,
                got: key.len(),
            });
        }
        let rounds = W / 4 - 1;
        let mut enc = [0u32; W];
        for (i, chunk) in key.chunks_exact(4).enumerate() {
            enc[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in nk..W {
            let mut temp = enc[i - 1];
            if i % nk == 0 {
                temp = sub_word(temp.rotate_left(8)) ^ ((RCON[i / nk - 1] as u32) << 24);
            } else if nk > 6 && i % nk == 4 {
                temp = sub_word(temp);
            }
            enc[i] = enc[i - nk] ^ temp;
        }

        // Decryption schedule: round keys in reverse round order, with
        // InvMixColumns folded into every middle round.
        let mut dec = [0u32; W];
        for r in 0..=rounds {
            for c in 0..4 {
                dec[4 * r + c] = enc[4 * (rounds - r) + c];
            }
        }
        for w in dec[4..4 * rounds].iter_mut() {
            *w = inv_mix_word(*w);
        }
        Ok(Self { enc, dec })
    }
}

impl<const W: usize> Drop for Schedule<W> {
    fn drop(&mut self) {
        // Explicit clearing of key material on drop. `black_box` keeps the
        // optimiser from eliding the writes as dead stores.
        self.enc.fill(0);
        self.dec.fill(0);
        core::hint::black_box(&self.enc);
        core::hint::black_box(&self.dec);
    }
}

/// One full encryption through a `W`-word schedule. `W` is a compile-time
/// constant, so the round count (`W / 4 - 1`) unrolls and every round-key
/// access is bounds-check free after monomorphisation.
#[inline]
fn encrypt_words<const W: usize>(block: &mut [u8; AES_BLOCK_SIZE], rk: &[u32; W]) {
    let rounds = W / 4 - 1;
    let mut s0 = u32::from_be_bytes([block[0], block[1], block[2], block[3]]) ^ rk[0];
    let mut s1 = u32::from_be_bytes([block[4], block[5], block[6], block[7]]) ^ rk[1];
    let mut s2 = u32::from_be_bytes([block[8], block[9], block[10], block[11]]) ^ rk[2];
    let mut s3 = u32::from_be_bytes([block[12], block[13], block[14], block[15]]) ^ rk[3];

    let mut k = 4;
    for _ in 1..rounds {
        let t0 = TE0[(s0 >> 24) as usize]
            ^ TE1[((s1 >> 16) & 0xff) as usize]
            ^ TE2[((s2 >> 8) & 0xff) as usize]
            ^ TE3[(s3 & 0xff) as usize]
            ^ rk[k];
        let t1 = TE0[(s1 >> 24) as usize]
            ^ TE1[((s2 >> 16) & 0xff) as usize]
            ^ TE2[((s3 >> 8) & 0xff) as usize]
            ^ TE3[(s0 & 0xff) as usize]
            ^ rk[k + 1];
        let t2 = TE0[(s2 >> 24) as usize]
            ^ TE1[((s3 >> 16) & 0xff) as usize]
            ^ TE2[((s0 >> 8) & 0xff) as usize]
            ^ TE3[(s1 & 0xff) as usize]
            ^ rk[k + 2];
        let t3 = TE0[(s3 >> 24) as usize]
            ^ TE1[((s0 >> 16) & 0xff) as usize]
            ^ TE2[((s1 >> 8) & 0xff) as usize]
            ^ TE3[(s2 & 0xff) as usize]
            ^ rk[k + 3];
        s0 = t0;
        s1 = t1;
        s2 = t2;
        s3 = t3;
        k += 4;
    }

    // Final round: SubBytes ∘ ShiftRows only (no MixColumns).
    let t0 = last_round_word(s0, s1, s2, s3, &SBOX) ^ rk[k];
    let t1 = last_round_word(s1, s2, s3, s0, &SBOX) ^ rk[k + 1];
    let t2 = last_round_word(s2, s3, s0, s1, &SBOX) ^ rk[k + 2];
    let t3 = last_round_word(s3, s0, s1, s2, &SBOX) ^ rk[k + 3];

    block[0..4].copy_from_slice(&t0.to_be_bytes());
    block[4..8].copy_from_slice(&t1.to_be_bytes());
    block[8..12].copy_from_slice(&t2.to_be_bytes());
    block[12..16].copy_from_slice(&t3.to_be_bytes());
}

#[inline]
fn decrypt_words<const W: usize>(block: &mut [u8; AES_BLOCK_SIZE], rk: &[u32; W]) {
    let rounds = W / 4 - 1;
    let mut s0 = u32::from_be_bytes([block[0], block[1], block[2], block[3]]) ^ rk[0];
    let mut s1 = u32::from_be_bytes([block[4], block[5], block[6], block[7]]) ^ rk[1];
    let mut s2 = u32::from_be_bytes([block[8], block[9], block[10], block[11]]) ^ rk[2];
    let mut s3 = u32::from_be_bytes([block[12], block[13], block[14], block[15]]) ^ rk[3];

    let mut k = 4;
    for _ in 1..rounds {
        let t0 = TD0[(s0 >> 24) as usize]
            ^ TD1[((s3 >> 16) & 0xff) as usize]
            ^ TD2[((s2 >> 8) & 0xff) as usize]
            ^ TD3[(s1 & 0xff) as usize]
            ^ rk[k];
        let t1 = TD0[(s1 >> 24) as usize]
            ^ TD1[((s0 >> 16) & 0xff) as usize]
            ^ TD2[((s3 >> 8) & 0xff) as usize]
            ^ TD3[(s2 & 0xff) as usize]
            ^ rk[k + 1];
        let t2 = TD0[(s2 >> 24) as usize]
            ^ TD1[((s1 >> 16) & 0xff) as usize]
            ^ TD2[((s0 >> 8) & 0xff) as usize]
            ^ TD3[(s3 & 0xff) as usize]
            ^ rk[k + 2];
        let t3 = TD0[(s3 >> 24) as usize]
            ^ TD1[((s2 >> 16) & 0xff) as usize]
            ^ TD2[((s1 >> 8) & 0xff) as usize]
            ^ TD3[(s0 & 0xff) as usize]
            ^ rk[k + 3];
        s0 = t0;
        s1 = t1;
        s2 = t2;
        s3 = t3;
        k += 4;
    }

    let t0 = last_round_word(s0, s3, s2, s1, &INV_SBOX) ^ rk[k];
    let t1 = last_round_word(s1, s0, s3, s2, &INV_SBOX) ^ rk[k + 1];
    let t2 = last_round_word(s2, s1, s0, s3, &INV_SBOX) ^ rk[k + 2];
    let t3 = last_round_word(s3, s2, s1, s0, &INV_SBOX) ^ rk[k + 3];

    block[0..4].copy_from_slice(&t0.to_be_bytes());
    block[4..8].copy_from_slice(&t1.to_be_bytes());
    block[8..12].copy_from_slice(&t2.to_be_bytes());
    block[12..16].copy_from_slice(&t3.to_be_bytes());
}

/// Assemble one final-round output word from the top/high/low/bottom bytes of
/// the four words ShiftRows (or InvShiftRows) routes into it.
#[inline]
fn last_round_word(a: u32, b: u32, c: u32, d: u32, sbox: &[u8; 256]) -> u32 {
    ((sbox[(a >> 24) as usize] as u32) << 24)
        | ((sbox[((b >> 16) & 0xff) as usize] as u32) << 16)
        | ((sbox[((c >> 8) & 0xff) as usize] as u32) << 8)
        | (sbox[(d & 0xff) as usize] as u32)
}

/// AES with a 128-bit key (10 rounds).
#[derive(Clone)]
pub struct Aes128 {
    keys: Schedule<44>,
}

impl Aes128 {
    /// Construct a cipher instance from a 16-byte key. Allocation-free.
    pub fn new(key: &[u8; 16]) -> Self {
        Self {
            keys: Schedule::expand(key).expect("16-byte key is always valid"),
        }
    }

    /// Construct from a slice, rejecting wrong lengths with a typed error.
    pub fn from_slice(key: &[u8]) -> Result<Self, CryptoError> {
        Ok(Self {
            keys: Schedule::expand(key)?,
        })
    }
}

impl BlockCipher for Aes128 {
    fn encrypt_block(&self, block: &mut [u8; AES_BLOCK_SIZE]) {
        encrypt_words(block, &self.keys.enc);
    }

    fn decrypt_block(&self, block: &mut [u8; AES_BLOCK_SIZE]) {
        decrypt_words(block, &self.keys.dec);
    }
}

/// AES with a 256-bit key (14 rounds). This is the cipher used throughout the
/// reproduction, matching the paper's choice of AES for the block cipher.
#[derive(Clone)]
pub struct Aes256 {
    keys: Schedule<60>,
}

impl Aes256 {
    /// Construct a cipher instance from a 32-byte key. Allocation-free.
    pub fn new(key: &[u8; 32]) -> Self {
        Self {
            keys: Schedule::expand(key).expect("32-byte key is always valid"),
        }
    }

    /// Construct from a slice, rejecting wrong lengths with a typed error.
    pub fn from_slice(key: &[u8]) -> Result<Self, CryptoError> {
        Ok(Self {
            keys: Schedule::expand(key)?,
        })
    }
}

impl BlockCipher for Aes256 {
    fn encrypt_block(&self, block: &mut [u8; AES_BLOCK_SIZE]) {
        encrypt_words(block, &self.keys.enc);
    }

    fn decrypt_block(&self, block: &mut [u8; AES_BLOCK_SIZE]) {
        decrypt_words(block, &self.keys.dec);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex_to_bytes(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn sbox_matches_known_values() {
        // Spot-check values from the FIPS-197 S-box table.
        assert_eq!(SBOX[0x00], 0x63);
        assert_eq!(SBOX[0x01], 0x7c);
        assert_eq!(SBOX[0x53], 0xed);
        assert_eq!(SBOX[0xff], 0x16);
        assert_eq!(INV_SBOX[0x63], 0x00);
        assert_eq!(INV_SBOX[0x16], 0xff);
    }

    #[test]
    fn gf_mul_known_products() {
        assert_eq!(gf_mul(0x57, 0x83), 0xc1);
        assert_eq!(gf_mul(0x57, 0x13), 0xfe);
    }

    #[test]
    fn t_tables_are_consistent_rotations() {
        for x in 0..256usize {
            assert_eq!(TE1[x], TE0[x].rotate_right(8));
            assert_eq!(TE2[x], TE0[x].rotate_right(16));
            assert_eq!(TE3[x], TE0[x].rotate_right(24));
            assert_eq!(TD1[x], TD0[x].rotate_right(8));
            // The table entry must be the MixColumns image of (S[x],0,0,0).
            let s = SBOX[x] as usize;
            let expected = u32::from_be_bytes([MUL2[s], SBOX[x], SBOX[x], MUL3[s]]);
            assert_eq!(TE0[x], expected);
            let si = INV_SBOX[x] as usize;
            let expected = u32::from_be_bytes([MUL14[si], MUL9[si], MUL13[si], MUL11[si]]);
            assert_eq!(TD0[x], expected);
        }
    }

    #[test]
    fn aes128_fips197_vector() {
        // FIPS-197 Appendix B.
        let key: [u8; 16] = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let plaintext: [u8; 16] = [
            0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
            0x07, 0x34,
        ];
        let expected: [u8; 16] = [
            0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a,
            0x0b, 0x32,
        ];
        let cipher = Aes128::new(&key);
        let mut block = plaintext;
        cipher.encrypt_block(&mut block);
        assert_eq!(block, expected);
        cipher.decrypt_block(&mut block);
        assert_eq!(block, plaintext);
    }

    #[test]
    fn aes128_fips197_appendix_c1() {
        // FIPS-197 Appendix C.1 example vectors, both directions.
        let key: [u8; 16] = hex_to_bytes("000102030405060708090a0b0c0d0e0f")
            .try_into()
            .unwrap();
        let plaintext: [u8; 16] = hex_to_bytes("00112233445566778899aabbccddeeff")
            .try_into()
            .unwrap();
        let expected: [u8; 16] = hex_to_bytes("69c4e0d86a7b0430d8cdb78070b4c55a")
            .try_into()
            .unwrap();
        let cipher = Aes128::new(&key);
        let mut block = plaintext;
        cipher.encrypt_block(&mut block);
        assert_eq!(block, expected);
        cipher.decrypt_block(&mut block);
        assert_eq!(block, plaintext);
    }

    #[test]
    fn aes256_fips197_appendix_c3() {
        // FIPS-197 Appendix C.3 example vectors.
        let key: [u8; 32] =
            hex_to_bytes("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f")
                .try_into()
                .unwrap();
        let plaintext: [u8; 16] = hex_to_bytes("00112233445566778899aabbccddeeff")
            .try_into()
            .unwrap();
        let expected: [u8; 16] = hex_to_bytes("8ea2b7ca516745bfeafc49904b496089")
            .try_into()
            .unwrap();
        let cipher = Aes256::new(&key);
        let mut block = plaintext;
        cipher.encrypt_block(&mut block);
        assert_eq!(block, expected);
        cipher.decrypt_block(&mut block);
        assert_eq!(block, plaintext);
    }

    #[test]
    fn sp800_38a_ecb_aes128_known_answers() {
        // NIST SP 800-38A F.1.1 ECB-AES128.Encrypt, all four blocks.
        let key: [u8; 16] = hex_to_bytes("2b7e151628aed2a6abf7158809cf4f3c")
            .try_into()
            .unwrap();
        let cipher = Aes128::new(&key);
        let vectors = [
            (
                "6bc1bee22e409f96e93d7e117393172a",
                "3ad77bb40d7a3660a89ecaf32466ef97",
            ),
            (
                "ae2d8a571e03ac9c9eb76fac45af8e51",
                "f5d3d58503b9699de785895a96fdbaaf",
            ),
            (
                "30c81c46a35ce411e5fbc1191a0a52ef",
                "43b1cd7f598ece23881b00e3ed030688",
            ),
            (
                "f69f2445df4f9b17ad2b417be66c3710",
                "7b0c785e27e8ad3f8223207104725dd4",
            ),
        ];
        for (pt, ct) in vectors {
            let mut block: [u8; 16] = hex_to_bytes(pt).try_into().unwrap();
            cipher.encrypt_block(&mut block);
            assert_eq!(block.to_vec(), hex_to_bytes(ct), "plaintext {pt}");
            cipher.decrypt_block(&mut block);
            assert_eq!(block.to_vec(), hex_to_bytes(pt), "ciphertext {ct}");
        }
    }

    #[test]
    fn sp800_38a_ecb_aes256_known_answers() {
        // NIST SP 800-38A F.1.5 ECB-AES256.Encrypt, all four blocks.
        let key: [u8; 32] =
            hex_to_bytes("603deb1015ca71be2b73aef0857d77811f352c073b6108d72d9810a30914dff4")
                .try_into()
                .unwrap();
        let cipher = Aes256::new(&key);
        let vectors = [
            (
                "6bc1bee22e409f96e93d7e117393172a",
                "f3eed1bdb5d2a03c064b5a7e3db181f8",
            ),
            (
                "ae2d8a571e03ac9c9eb76fac45af8e51",
                "591ccb10d410ed26dc5ba74a31362870",
            ),
            (
                "30c81c46a35ce411e5fbc1191a0a52ef",
                "b6ed21b99ca6f4f9f153e7b1beafed1d",
            ),
            (
                "f69f2445df4f9b17ad2b417be66c3710",
                "23304b7a39f9f3ff067d8d8f9e24ecc7",
            ),
        ];
        for (pt, ct) in vectors {
            let mut block: [u8; 16] = hex_to_bytes(pt).try_into().unwrap();
            cipher.encrypt_block(&mut block);
            assert_eq!(block.to_vec(), hex_to_bytes(ct), "plaintext {pt}");
            cipher.decrypt_block(&mut block);
            assert_eq!(block.to_vec(), hex_to_bytes(pt), "ciphertext {ct}");
        }
    }

    #[test]
    fn from_slice_rejects_wrong_lengths() {
        assert!(Aes128::from_slice(&[0u8; 16]).is_ok());
        assert!(Aes256::from_slice(&[0u8; 32]).is_ok());
        for len in [0usize, 15, 17, 24, 31, 33, 64] {
            let key = vec![0u8; len];
            if len != 16 {
                assert_eq!(
                    Aes128::from_slice(&key).err(),
                    Some(CryptoError::BadKeyLength {
                        expected: 16,
                        got: len
                    })
                );
            }
            if len != 32 {
                assert_eq!(
                    Aes256::from_slice(&key).err(),
                    Some(CryptoError::BadKeyLength {
                        expected: 32,
                        got: len
                    })
                );
            }
        }
    }

    #[test]
    fn matches_reference_implementation() {
        // Pseudo-random keys/blocks; the exhaustive randomised comparison
        // lives in tests/proptests.rs.
        let mut x = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for _ in 0..64 {
            let mut key = [0u8; 32];
            for chunk in key.chunks_exact_mut(8) {
                chunk.copy_from_slice(&next().to_be_bytes());
            }
            let mut block = [0u8; 16];
            for chunk in block.chunks_exact_mut(8) {
                chunk.copy_from_slice(&next().to_be_bytes());
            }

            let fast = Aes256::new(&key);
            let slow = reference::Aes256::new(&key);
            let mut a = block;
            let mut b = block;
            fast.encrypt_block(&mut a);
            slow.encrypt_block(&mut b);
            assert_eq!(a, b, "encrypt mismatch");
            fast.decrypt_block(&mut a);
            slow.decrypt_block(&mut b);
            assert_eq!(a, b, "decrypt mismatch");
            assert_eq!(a, block);

            let key128: [u8; 16] = key[..16].try_into().unwrap();
            let fast = Aes128::new(&key128);
            let slow = reference::Aes128::new(&key128);
            let mut a = block;
            let mut b = block;
            fast.encrypt_block(&mut a);
            slow.encrypt_block(&mut b);
            assert_eq!(a, b, "encrypt mismatch (128)");
        }
    }

    #[test]
    fn aes256_roundtrip_many_blocks() {
        let key = [7u8; 32];
        let cipher = Aes256::new(&key);
        for i in 0..64u8 {
            let original = [i; 16];
            let mut block = original;
            cipher.encrypt_block(&mut block);
            assert_ne!(block, original, "encryption must change the block");
            cipher.decrypt_block(&mut block);
            assert_eq!(block, original);
        }
    }

    #[test]
    fn different_keys_produce_different_ciphertexts() {
        let c1 = Aes256::new(&[1u8; 32]);
        let c2 = Aes256::new(&[2u8; 32]);
        let mut b1 = [0u8; 16];
        let mut b2 = [0u8; 16];
        c1.encrypt_block(&mut b1);
        c2.encrypt_block(&mut b2);
        assert_ne!(b1, b2);
    }

    #[test]
    fn blanket_impls_delegate() {
        let cipher = Aes256::new(&[5u8; 32]);
        let mut direct = [9u8; 16];
        cipher.encrypt_block(&mut direct);

        let via_ref = &cipher;
        let mut b = [9u8; 16];
        via_ref.encrypt_block(&mut b);
        assert_eq!(b, direct);

        let via_arc = std::sync::Arc::new(Aes256::new(&[5u8; 32]));
        let mut b = [9u8; 16];
        via_arc.encrypt_block(&mut b);
        assert_eq!(b, direct);
        via_arc.decrypt_block(&mut b);
        assert_eq!(b, [9u8; 16]);
    }
}
