//! The AES-NI hardware backend (x86-64 only).
//!
//! Round keys are expanded with `aeskeygenassist` and kept as `__m128i`
//! arrays on the stack (no heap allocation, overwritten on drop, exactly like
//! the T-table [`super::ttable`] schedules). A block round is a single
//! `aesenc`/`aesdec` instruction, so single-block throughput is already an
//! order of magnitude over the T-tables — and because the instructions are
//! pipelined, the batched entry points below run **eight independent blocks
//! in flight at once**, which is where CBC *decryption* (parallelisable,
//! unlike encryption) and the reseal round trip get their multi-GB/s path.
//!
//! Safety: every `#[target_feature(enable = "aes,sse2")]` function in this module
//! is only reachable through the constructors, which assert AES-NI support at
//! runtime (`is_x86_feature_detected!`). The remaining `unsafe` blocks are
//! unaligned 16-byte loads/stores over slices whose bounds are checked by the
//! callers.

use core::arch::x86_64::{
    __m128i, _mm_aesdec_si128, _mm_aesdeclast_si128, _mm_aesenc_si128, _mm_aesenclast_si128,
    _mm_aesimc_si128, _mm_aeskeygenassist_si128, _mm_loadu_si128, _mm_setzero_si128,
    _mm_shuffle_epi32, _mm_slli_si128, _mm_storeu_si128, _mm_xor_si128,
};

use super::AES_BLOCK_SIZE;

/// How many blocks the batched entry points keep in flight. Eight 128-bit
/// lanes fill the `aesenc`/`aesdec` pipeline on every post-2010 x86 core
/// while still leaving half the XMM register file for the round key.
pub(crate) const PIPELINE_WIDTH: usize = 8;

const WIDE_BYTES: usize = PIPELINE_WIDTH * AES_BLOCK_SIZE;

/// Unaligned 16-byte load from a slice of at least 16 bytes.
#[inline(always)]
fn load(bytes: &[u8]) -> __m128i {
    debug_assert!(bytes.len() >= AES_BLOCK_SIZE);
    // SAFETY: the slice holds at least 16 readable bytes and `loadu` has no
    // alignment requirement.
    unsafe { _mm_loadu_si128(bytes.as_ptr().cast()) }
}

/// Unaligned 16-byte store into a slice of at least 16 bytes.
#[inline(always)]
fn store(bytes: &mut [u8], v: __m128i) {
    debug_assert!(bytes.len() >= AES_BLOCK_SIZE);
    // SAFETY: the slice holds at least 16 writable bytes and `storeu` has no
    // alignment requirement.
    unsafe { _mm_storeu_si128(bytes.as_mut_ptr().cast(), v) }
}

/// The xor-fold shared by every `aeskeygenassist` expansion step: the running
/// key word cascades left through the lane while the assist word lands on top.
/// (`sse2` is baseline on x86-64; the attribute only satisfies the
/// target-feature call rules for the intrinsics.)
#[inline]
#[target_feature(enable = "sse2")]
fn key_fold(mut a: __m128i, assist: __m128i) -> __m128i {
    a = _mm_xor_si128(a, _mm_slli_si128(a, 4));
    a = _mm_xor_si128(a, _mm_slli_si128(a, 4));
    a = _mm_xor_si128(a, _mm_slli_si128(a, 4));
    _mm_xor_si128(a, assist)
}

#[target_feature(enable = "aes,sse2")]
fn expand128(key: &[u8; 16]) -> [__m128i; 11] {
    let mut rk = [_mm_setzero_si128(); 11];
    rk[0] = load(key);
    macro_rules! step {
        ($i:expr, $rcon:literal) => {
            rk[$i] = key_fold(
                rk[$i - 1],
                _mm_shuffle_epi32(_mm_aeskeygenassist_si128(rk[$i - 1], $rcon), 0xff),
            );
        };
    }
    step!(1, 0x01);
    step!(2, 0x02);
    step!(3, 0x04);
    step!(4, 0x08);
    step!(5, 0x10);
    step!(6, 0x20);
    step!(7, 0x40);
    step!(8, 0x80);
    step!(9, 0x1b);
    step!(10, 0x36);
    rk
}

#[target_feature(enable = "aes,sse2")]
fn expand256(key: &[u8; 32]) -> [__m128i; 15] {
    let mut rk = [_mm_setzero_si128(); 15];
    rk[0] = load(&key[..16]);
    rk[1] = load(&key[16..]);
    // Even round keys use the rcon assist on the 0xff-shuffled word; the odd
    // ones re-assist the fresh even key with rcon 0 shuffled to 0xaa
    // (FIPS-197's extra SubWord step for 256-bit keys).
    macro_rules! even {
        ($i:expr, $rcon:literal) => {
            rk[$i] = key_fold(
                rk[$i - 2],
                _mm_shuffle_epi32(_mm_aeskeygenassist_si128(rk[$i - 1], $rcon), 0xff),
            );
        };
    }
    macro_rules! odd {
        ($i:expr) => {
            rk[$i] = key_fold(
                rk[$i - 2],
                _mm_shuffle_epi32(_mm_aeskeygenassist_si128(rk[$i - 1], 0), 0xaa),
            );
        };
    }
    even!(2, 0x01);
    odd!(3);
    even!(4, 0x02);
    odd!(5);
    even!(6, 0x04);
    odd!(7);
    even!(8, 0x08);
    odd!(9);
    even!(10, 0x10);
    odd!(11);
    even!(12, 0x20);
    odd!(13);
    even!(14, 0x40);
    rk
}

/// Decryption round keys for the equivalent inverse cipher: the encryption
/// schedule reversed, with `aesimc` (InvMixColumns) on every middle round.
#[target_feature(enable = "aes,sse2")]
fn invert_schedule<const R: usize>(enc: &[__m128i; R]) -> [__m128i; R] {
    let mut dec = [_mm_setzero_si128(); R];
    dec[0] = enc[R - 1];
    for i in 1..R - 1 {
        dec[i] = _mm_aesimc_si128(enc[R - 1 - i]);
    }
    dec[R - 1] = enc[0];
    dec
}

#[target_feature(enable = "aes,sse2")]
fn encrypt1<const R: usize>(rk: &[__m128i; R], block: &mut [u8; AES_BLOCK_SIZE]) {
    let mut b = _mm_xor_si128(load(block), rk[0]);
    for key in &rk[1..R - 1] {
        b = _mm_aesenc_si128(b, *key);
    }
    store(block, _mm_aesenclast_si128(b, rk[R - 1]));
}

#[target_feature(enable = "aes,sse2")]
fn decrypt1<const R: usize>(rk: &[__m128i; R], block: &mut [u8; AES_BLOCK_SIZE]) {
    let mut b = _mm_xor_si128(load(block), rk[0]);
    for key in &rk[1..R - 1] {
        b = _mm_aesdec_si128(b, *key);
    }
    store(block, _mm_aesdeclast_si128(b, rk[R - 1]));
}

/// Eight independent blocks through the cipher with the rounds interleaved:
/// each `aesenc` issues while the previous lanes' results are still in
/// flight, hiding the instruction latency entirely.
#[target_feature(enable = "aes,sse2")]
fn encrypt8<const R: usize>(rk: &[__m128i; R], data: &mut [u8]) {
    debug_assert_eq!(data.len(), WIDE_BYTES);
    let mut lanes = [_mm_setzero_si128(); PIPELINE_WIDTH];
    for (i, lane) in lanes.iter_mut().enumerate() {
        *lane = _mm_xor_si128(load(&data[i * AES_BLOCK_SIZE..]), rk[0]);
    }
    for key in &rk[1..R - 1] {
        for lane in &mut lanes {
            *lane = _mm_aesenc_si128(*lane, *key);
        }
    }
    for (i, lane) in lanes.iter().enumerate() {
        store(
            &mut data[i * AES_BLOCK_SIZE..],
            _mm_aesenclast_si128(*lane, rk[R - 1]),
        );
    }
}

#[target_feature(enable = "aes,sse2")]
fn decrypt8<const R: usize>(rk: &[__m128i; R], data: &mut [u8]) {
    debug_assert_eq!(data.len(), WIDE_BYTES);
    let mut lanes = [_mm_setzero_si128(); PIPELINE_WIDTH];
    for (i, lane) in lanes.iter_mut().enumerate() {
        *lane = _mm_xor_si128(load(&data[i * AES_BLOCK_SIZE..]), rk[0]);
    }
    for key in &rk[1..R - 1] {
        for lane in &mut lanes {
            *lane = _mm_aesdec_si128(*lane, *key);
        }
    }
    for (i, lane) in lanes.iter().enumerate() {
        store(
            &mut data[i * AES_BLOCK_SIZE..],
            _mm_aesdeclast_si128(*lane, rk[R - 1]),
        );
    }
}

#[target_feature(enable = "aes,sse2")]
fn encrypt_blocks<const R: usize>(rk: &[__m128i; R], data: &mut [u8]) {
    debug_assert_eq!(data.len() % AES_BLOCK_SIZE, 0);
    let mut wide = data.chunks_exact_mut(WIDE_BYTES);
    for chunk in &mut wide {
        encrypt8(rk, chunk);
    }
    for block in wide.into_remainder().chunks_exact_mut(AES_BLOCK_SIZE) {
        encrypt1(rk, block.try_into().expect("16-byte lanes"));
    }
}

#[target_feature(enable = "aes,sse2")]
fn decrypt_blocks<const R: usize>(rk: &[__m128i; R], data: &mut [u8]) {
    debug_assert_eq!(data.len() % AES_BLOCK_SIZE, 0);
    let mut wide = data.chunks_exact_mut(WIDE_BYTES);
    for chunk in &mut wide {
        decrypt8(rk, chunk);
    }
    for block in wide.into_remainder().chunks_exact_mut(AES_BLOCK_SIZE) {
        decrypt1(rk, block.try_into().expect("16-byte lanes"));
    }
}

/// Assert once that the CPU actually has AES-NI. `is_x86_feature_detected!`
/// caches its CPUID probe, so this is a single atomic load on the hot path —
/// and it makes every `unsafe` call below locally justified: the type cannot
/// exist on a CPU without the instructions.
fn assert_detected() {
    assert!(
        std::arch::is_x86_feature_detected!("aes"),
        "AES-NI backend constructed on a CPU without AES-NI"
    );
}

macro_rules! aesni_cipher {
    ($name:ident, $keylen:expr, $rounds:expr, $expand:ident) => {
        /// Hardware-AES key schedule; see the module docs.
        #[derive(Clone)]
        pub(crate) struct $name {
            enc: [__m128i; $rounds],
            dec: [__m128i; $rounds],
        }

        impl $name {
            pub(crate) fn new(key: &[u8; $keylen]) -> Self {
                assert_detected();
                // SAFETY: `assert_detected` proved AES-NI support.
                let enc = unsafe { $expand(key) };
                let dec = unsafe { invert_schedule(&enc) };
                Self { enc, dec }
            }

            #[inline]
            pub(crate) fn encrypt_block(&self, block: &mut [u8; AES_BLOCK_SIZE]) {
                // SAFETY: construction proved AES-NI support.
                unsafe { encrypt1(&self.enc, block) }
            }

            #[inline]
            pub(crate) fn decrypt_block(&self, block: &mut [u8; AES_BLOCK_SIZE]) {
                // SAFETY: construction proved AES-NI support.
                unsafe { decrypt1(&self.dec, block) }
            }

            #[inline]
            pub(crate) fn encrypt_blocks(&self, data: &mut [u8]) {
                // SAFETY: construction proved AES-NI support; `data` is
                // 16-byte aligned in length (checked by the dispatcher).
                unsafe { encrypt_blocks(&self.enc, data) }
            }

            #[inline]
            pub(crate) fn decrypt_blocks(&self, data: &mut [u8]) {
                // SAFETY: construction proved AES-NI support; `data` is
                // 16-byte aligned in length (checked by the dispatcher).
                unsafe { decrypt_blocks(&self.dec, data) }
            }
        }

        impl Drop for $name {
            fn drop(&mut self) {
                // Clear expanded key material; `black_box` keeps the writes
                // from being elided as dead stores.
                // SAFETY: `_mm_setzero_si128` only needs SSE2, which is
                // baseline on every x86-64 CPU this module compiles for.
                unsafe {
                    self.enc = [_mm_setzero_si128(); $rounds];
                    self.dec = [_mm_setzero_si128(); $rounds];
                }
                core::hint::black_box(&self.enc);
                core::hint::black_box(&self.dec);
            }
        }
    };
}

aesni_cipher!(Aes128Ni, 16, 11, expand128);
aesni_cipher!(Aes256Ni, 32, 15, expand256);

#[cfg(test)]
mod tests {
    use super::*;

    fn available() -> bool {
        std::arch::is_x86_feature_detected!("aes")
    }

    #[test]
    fn fips197_appendix_c_vectors() {
        if !available() {
            return;
        }
        // C.1 AES-128 and C.3 AES-256, both directions.
        let plaintext: [u8; 16] = [
            0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
            0xee, 0xff,
        ];
        let key128: [u8; 16] = core::array::from_fn(|i| i as u8);
        let c = Aes128Ni::new(&key128);
        let mut block = plaintext;
        c.encrypt_block(&mut block);
        assert_eq!(
            block,
            [
                0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
                0xc5, 0x5a
            ]
        );
        c.decrypt_block(&mut block);
        assert_eq!(block, plaintext);

        let key256: [u8; 32] = core::array::from_fn(|i| i as u8);
        let c = Aes256Ni::new(&key256);
        let mut block = plaintext;
        c.encrypt_block(&mut block);
        assert_eq!(
            block,
            [
                0x8e, 0xa2, 0xb7, 0xca, 0x51, 0x67, 0x45, 0xbf, 0xea, 0xfc, 0x49, 0x90, 0x4b, 0x49,
                0x60, 0x89
            ]
        );
        c.decrypt_block(&mut block);
        assert_eq!(block, plaintext);
    }

    #[test]
    fn wide_paths_match_single_block_paths() {
        if !available() {
            return;
        }
        let cipher = Aes256Ni::new(&[0x42u8; 32]);
        // 19 blocks: two full 8-wide chunks plus a 3-block remainder.
        let mut wide: Vec<u8> = (0..19 * 16).map(|i| (i % 251) as u8).collect();
        let mut single = wide.clone();
        cipher.encrypt_blocks(&mut wide);
        for block in single.chunks_exact_mut(16) {
            cipher.encrypt_block(block.try_into().unwrap());
        }
        assert_eq!(wide, single);
        cipher.decrypt_blocks(&mut wide);
        for block in single.chunks_exact_mut(16) {
            cipher.decrypt_block(block.try_into().unwrap());
        }
        assert_eq!(wide, single);
        assert_eq!(wide[..16], core::array::from_fn::<u8, 16, _>(|i| i as u8));
    }
}
