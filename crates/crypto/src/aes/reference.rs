//! The byte-oriented AES implementation, kept as an executable specification.
//!
//! The word-oriented T-table cipher in the parent module is the hot path used
//! by the rest of the workspace; this module exists so property tests (and the
//! `crypto_baseline` bench bin) can check the fast path against an
//! independent, maximally-literal transcription of FIPS-197. It is
//! deliberately table-free beyond the S-box (which FIPS-197 itself specifies
//! as a table): MixColumns multiplies in GF(2^8) at runtime, exactly as the
//! standard's pseudocode does. Do not use it in production paths — it is
//! roughly an order of magnitude slower than the T-table cipher.

use super::{gf_mul, BlockCipher, AES_BLOCK_SIZE, INV_SBOX, RCON, SBOX};
use crate::CryptoError;

/// Key schedule shared by both key sizes: `nk` = key length in words,
/// `nr` = number of rounds, producing `4 * (nr + 1)` words. Rejects keys whose
/// length is not `4 * nk` bytes with a typed error instead of panicking.
fn expand_key(key: &[u8], nk: usize, nr: usize) -> Result<Vec<[u8; 4]>, CryptoError> {
    if key.len() != nk * 4 {
        return Err(CryptoError::BadKeyLength {
            expected: nk * 4,
            got: key.len(),
        });
    }
    let total_words = 4 * (nr + 1);
    let mut w: Vec<[u8; 4]> = Vec::with_capacity(total_words);
    for i in 0..nk {
        w.push([key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]]);
    }
    for i in nk..total_words {
        let mut temp = w[i - 1];
        if i % nk == 0 {
            temp.rotate_left(1);
            for b in temp.iter_mut() {
                *b = SBOX[*b as usize];
            }
            temp[0] ^= RCON[i / nk - 1];
        } else if nk > 6 && i % nk == 4 {
            for b in temp.iter_mut() {
                *b = SBOX[*b as usize];
            }
        }
        let prev = w[i - nk];
        w.push([
            prev[0] ^ temp[0],
            prev[1] ^ temp[1],
            prev[2] ^ temp[2],
            prev[3] ^ temp[3],
        ]);
    }
    Ok(w)
}

fn add_round_key(state: &mut [u8; 16], round_keys: &[[u8; 4]], round: usize) {
    for col in 0..4 {
        let rk = round_keys[round * 4 + col];
        for row in 0..4 {
            state[4 * col + row] ^= rk[row];
        }
    }
}

fn sub_bytes(state: &mut [u8; 16]) {
    for b in state.iter_mut() {
        *b = SBOX[*b as usize];
    }
}

fn inv_sub_bytes(state: &mut [u8; 16]) {
    for b in state.iter_mut() {
        *b = INV_SBOX[*b as usize];
    }
}

fn shift_rows(state: &mut [u8; 16]) {
    // State is column-major: state[4*col + row].
    for row in 1..4 {
        let mut tmp = [0u8; 4];
        for col in 0..4 {
            tmp[col] = state[4 * ((col + row) % 4) + row];
        }
        for col in 0..4 {
            state[4 * col + row] = tmp[col];
        }
    }
}

fn inv_shift_rows(state: &mut [u8; 16]) {
    for row in 1..4 {
        let mut tmp = [0u8; 4];
        for col in 0..4 {
            tmp[(col + row) % 4] = state[4 * col + row];
        }
        for col in 0..4 {
            state[4 * col + row] = tmp[col];
        }
    }
}

fn mix_columns(state: &mut [u8; 16]) {
    for col in 0..4 {
        let a0 = state[4 * col];
        let a1 = state[4 * col + 1];
        let a2 = state[4 * col + 2];
        let a3 = state[4 * col + 3];
        state[4 * col] = gf_mul(a0, 2) ^ gf_mul(a1, 3) ^ a2 ^ a3;
        state[4 * col + 1] = a0 ^ gf_mul(a1, 2) ^ gf_mul(a2, 3) ^ a3;
        state[4 * col + 2] = a0 ^ a1 ^ gf_mul(a2, 2) ^ gf_mul(a3, 3);
        state[4 * col + 3] = gf_mul(a0, 3) ^ a1 ^ a2 ^ gf_mul(a3, 2);
    }
}

fn inv_mix_columns(state: &mut [u8; 16]) {
    for col in 0..4 {
        let a0 = state[4 * col];
        let a1 = state[4 * col + 1];
        let a2 = state[4 * col + 2];
        let a3 = state[4 * col + 3];
        state[4 * col] = gf_mul(a0, 14) ^ gf_mul(a1, 11) ^ gf_mul(a2, 13) ^ gf_mul(a3, 9);
        state[4 * col + 1] = gf_mul(a0, 9) ^ gf_mul(a1, 14) ^ gf_mul(a2, 11) ^ gf_mul(a3, 13);
        state[4 * col + 2] = gf_mul(a0, 13) ^ gf_mul(a1, 9) ^ gf_mul(a2, 14) ^ gf_mul(a3, 11);
        state[4 * col + 3] = gf_mul(a0, 11) ^ gf_mul(a1, 13) ^ gf_mul(a2, 9) ^ gf_mul(a3, 14);
    }
}

fn encrypt_with_schedule(block: &mut [u8; 16], round_keys: &[[u8; 4]], nr: usize) {
    add_round_key(block, round_keys, 0);
    for round in 1..nr {
        sub_bytes(block);
        shift_rows(block);
        mix_columns(block);
        add_round_key(block, round_keys, round);
    }
    sub_bytes(block);
    shift_rows(block);
    add_round_key(block, round_keys, nr);
}

fn decrypt_with_schedule(block: &mut [u8; 16], round_keys: &[[u8; 4]], nr: usize) {
    add_round_key(block, round_keys, nr);
    for round in (1..nr).rev() {
        inv_shift_rows(block);
        inv_sub_bytes(block);
        add_round_key(block, round_keys, round);
        inv_mix_columns(block);
    }
    inv_shift_rows(block);
    inv_sub_bytes(block);
    add_round_key(block, round_keys, 0);
}

/// Clear a round-key schedule before it is freed.
fn wipe_schedule(round_keys: &mut [[u8; 4]]) {
    for w in round_keys.iter_mut() {
        *w = [0u8; 4];
    }
    core::hint::black_box(&*round_keys);
}

/// Byte-oriented AES with a 128-bit key (10 rounds).
#[derive(Clone)]
pub struct Aes128 {
    round_keys: Vec<[u8; 4]>,
}

impl Aes128 {
    /// Number of rounds for AES-128.
    const ROUNDS: usize = 10;

    /// Construct a cipher instance from a 16-byte key.
    pub fn new(key: &[u8; 16]) -> Self {
        Self {
            round_keys: expand_key(key, 4, Self::ROUNDS).expect("16-byte key is always valid"),
        }
    }

    /// Construct from a slice, rejecting wrong lengths with a typed error.
    pub fn from_slice(key: &[u8]) -> Result<Self, CryptoError> {
        Ok(Self {
            round_keys: expand_key(key, 4, Self::ROUNDS)?,
        })
    }
}

impl Drop for Aes128 {
    fn drop(&mut self) {
        wipe_schedule(&mut self.round_keys);
    }
}

impl BlockCipher for Aes128 {
    fn encrypt_block(&self, block: &mut [u8; AES_BLOCK_SIZE]) {
        encrypt_with_schedule(block, &self.round_keys, Self::ROUNDS);
    }

    fn decrypt_block(&self, block: &mut [u8; AES_BLOCK_SIZE]) {
        decrypt_with_schedule(block, &self.round_keys, Self::ROUNDS);
    }
}

/// Byte-oriented AES with a 256-bit key (14 rounds).
#[derive(Clone)]
pub struct Aes256 {
    round_keys: Vec<[u8; 4]>,
}

impl Aes256 {
    /// Number of rounds for AES-256.
    const ROUNDS: usize = 14;

    /// Construct a cipher instance from a 32-byte key.
    pub fn new(key: &[u8; 32]) -> Self {
        Self {
            round_keys: expand_key(key, 8, Self::ROUNDS).expect("32-byte key is always valid"),
        }
    }

    /// Construct from a slice, rejecting wrong lengths with a typed error.
    pub fn from_slice(key: &[u8]) -> Result<Self, CryptoError> {
        Ok(Self {
            round_keys: expand_key(key, 8, Self::ROUNDS)?,
        })
    }
}

impl Drop for Aes256 {
    fn drop(&mut self) {
        wipe_schedule(&mut self.round_keys);
    }
}

impl BlockCipher for Aes256 {
    fn encrypt_block(&self, block: &mut [u8; AES_BLOCK_SIZE]) {
        encrypt_with_schedule(block, &self.round_keys, Self::ROUNDS);
    }

    fn decrypt_block(&self, block: &mut [u8; AES_BLOCK_SIZE]) {
        decrypt_with_schedule(block, &self.round_keys, Self::ROUNDS);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aes128_fips197_vector() {
        // FIPS-197 Appendix B.
        let key: [u8; 16] = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let plaintext: [u8; 16] = [
            0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
            0x07, 0x34,
        ];
        let expected: [u8; 16] = [
            0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a,
            0x0b, 0x32,
        ];
        let cipher = Aes128::new(&key);
        let mut block = plaintext;
        cipher.encrypt_block(&mut block);
        assert_eq!(block, expected);
        cipher.decrypt_block(&mut block);
        assert_eq!(block, plaintext);
    }

    #[test]
    fn aes256_fips197_appendix_c3() {
        // FIPS-197 Appendix C.3 example vectors.
        let key: [u8; 32] = [
            0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d,
            0x0e, 0x0f, 0x10, 0x11, 0x12, 0x13, 0x14, 0x15, 0x16, 0x17, 0x18, 0x19, 0x1a, 0x1b,
            0x1c, 0x1d, 0x1e, 0x1f,
        ];
        let plaintext: [u8; 16] = [
            0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
            0xee, 0xff,
        ];
        let expected: [u8; 16] = [
            0x8e, 0xa2, 0xb7, 0xca, 0x51, 0x67, 0x45, 0xbf, 0xea, 0xfc, 0x49, 0x90, 0x4b, 0x49,
            0x60, 0x89,
        ];
        let cipher = Aes256::new(&key);
        let mut block = plaintext;
        cipher.encrypt_block(&mut block);
        assert_eq!(block, expected);
        cipher.decrypt_block(&mut block);
        assert_eq!(block, plaintext);
    }

    #[test]
    fn expand_key_rejects_wrong_lengths() {
        assert!(expand_key(&[0u8; 16], 4, 10).is_ok());
        assert!(expand_key(&[0u8; 32], 8, 14).is_ok());
        assert_eq!(
            expand_key(&[0u8; 15], 4, 10).err(),
            Some(CryptoError::BadKeyLength {
                expected: 16,
                got: 15
            })
        );
        assert_eq!(
            expand_key(&[0u8; 33], 8, 14).err(),
            Some(CryptoError::BadKeyLength {
                expected: 32,
                got: 33
            })
        );
        assert!(Aes128::from_slice(&[0u8; 24]).is_err());
        assert!(Aes256::from_slice(&[0u8; 24]).is_err());
    }
}
