//! The portable fused-T-table AES backend.
//!
//! Each of the four 256×`u32` encryption tables combines SubBytes, ShiftRows
//! and MixColumns into a single lookup (and the four decryption tables fuse
//! the inverse transformations), so a round is 16 table lookups and a handful
//! of XORs instead of dozens of byte operations. All tables are computed at
//! compile time, and the round keys live in fixed-size stack arrays, so
//! constructing a cipher performs no heap allocation.
//!
//! This is the fallback behind the runtime-dispatched [`crate::Aes128`] /
//! [`crate::Aes256`] wrappers: it compiles and runs on every architecture,
//! while hosts with AES-NI get the [`super::aesni`] backend instead.

use super::{AES_BLOCK_SIZE, INV_SBOX, MUL11, MUL13, MUL14, MUL2, MUL3, MUL9, RCON, SBOX};
use crate::CryptoError;

/// Fused encryption table: `TE0[x]` is the MixColumns image of the column
/// `(S[x], 0, 0, 0)`, i.e. the big-endian word `(2·S[x], S[x], S[x], 3·S[x])`.
/// `TE1..TE3` are byte rotations of `TE0` covering the other three rows, which
/// is exactly where ShiftRows lands each state byte.
const TE0: [u32; 256] = build_te0();
const TE1: [u32; 256] = rotate_table(&TE0, 8);
const TE2: [u32; 256] = rotate_table(&TE0, 16);
const TE3: [u32; 256] = rotate_table(&TE0, 24);

/// Fused decryption table: `TD0[x]` is the InvMixColumns image of the column
/// `(Si[x], 0, 0, 0)` — the word `(14·Si[x], 9·Si[x], 13·Si[x], 11·Si[x])`.
const TD0: [u32; 256] = build_td0();
const TD1: [u32; 256] = rotate_table(&TD0, 8);
const TD2: [u32; 256] = rotate_table(&TD0, 16);
const TD3: [u32; 256] = rotate_table(&TD0, 24);

const fn build_te0() -> [u32; 256] {
    let mut t = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let s = SBOX[i];
        t[i] = ((MUL2[s as usize] as u32) << 24)
            | ((s as u32) << 16)
            | ((s as u32) << 8)
            | (MUL3[s as usize] as u32);
        i += 1;
    }
    t
}

const fn build_td0() -> [u32; 256] {
    let mut t = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let s = INV_SBOX[i] as usize;
        t[i] = ((MUL14[s] as u32) << 24)
            | ((MUL9[s] as u32) << 16)
            | ((MUL13[s] as u32) << 8)
            | (MUL11[s] as u32);
        i += 1;
    }
    t
}

const fn rotate_table(base: &[u32; 256], bits: u32) -> [u32; 256] {
    let mut t = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        t[i] = base[i].rotate_right(bits);
        i += 1;
    }
    t
}

#[inline]
fn sub_word(w: u32) -> u32 {
    ((SBOX[(w >> 24) as usize] as u32) << 24)
        | ((SBOX[((w >> 16) & 0xff) as usize] as u32) << 16)
        | ((SBOX[((w >> 8) & 0xff) as usize] as u32) << 8)
        | (SBOX[(w & 0xff) as usize] as u32)
}

/// InvMixColumns of one big-endian column word; applied to the middle rounds
/// of the decryption schedule so decryption can use the fused `TD` tables
/// (the "equivalent inverse cipher" of FIPS-197 Section 5.3.5).
#[inline]
fn inv_mix_word(w: u32) -> u32 {
    let [a0, a1, a2, a3] = w.to_be_bytes();
    let (a0, a1, a2, a3) = (a0 as usize, a1 as usize, a2 as usize, a3 as usize);
    u32::from_be_bytes([
        MUL14[a0] ^ MUL11[a1] ^ MUL13[a2] ^ MUL9[a3],
        MUL9[a0] ^ MUL14[a1] ^ MUL11[a2] ^ MUL13[a3],
        MUL13[a0] ^ MUL9[a1] ^ MUL14[a2] ^ MUL11[a3],
        MUL11[a0] ^ MUL13[a1] ^ MUL9[a2] ^ MUL14[a3],
    ])
}

/// Expanded round keys for both directions, in fixed-size stack arrays
/// (`W = 4 * (rounds + 1)` words). Construction never touches the heap.
#[derive(Clone)]
struct Schedule<const W: usize> {
    enc: [u32; W],
    dec: [u32; W],
}

impl<const W: usize> Schedule<W> {
    /// FIPS-197 key expansion into both directions' round keys. The key
    /// length is checked once here with a typed error; nothing downstream can
    /// panic on a short slice.
    fn expand(key: &[u8]) -> Result<Self, CryptoError> {
        let nk = match W {
            44 => 4, // AES-128: 4-word key, 10 rounds, 44 schedule words.
            60 => 8, // AES-256: 8-word key, 14 rounds, 60 schedule words.
            _ => unreachable!("unsupported schedule size"),
        };
        if key.len() != nk * 4 {
            return Err(CryptoError::BadKeyLength {
                expected: nk * 4,
                got: key.len(),
            });
        }
        let rounds = W / 4 - 1;
        let mut enc = [0u32; W];
        for (i, chunk) in key.chunks_exact(4).enumerate() {
            enc[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in nk..W {
            let mut temp = enc[i - 1];
            if i % nk == 0 {
                temp = sub_word(temp.rotate_left(8)) ^ ((RCON[i / nk - 1] as u32) << 24);
            } else if nk > 6 && i % nk == 4 {
                temp = sub_word(temp);
            }
            enc[i] = enc[i - nk] ^ temp;
        }

        // Decryption schedule: round keys in reverse round order, with
        // InvMixColumns folded into every middle round.
        let mut dec = [0u32; W];
        for r in 0..=rounds {
            for c in 0..4 {
                dec[4 * r + c] = enc[4 * (rounds - r) + c];
            }
        }
        for w in dec[4..4 * rounds].iter_mut() {
            *w = inv_mix_word(*w);
        }
        Ok(Self { enc, dec })
    }
}

impl<const W: usize> Drop for Schedule<W> {
    fn drop(&mut self) {
        // Explicit clearing of key material on drop. `black_box` keeps the
        // optimiser from eliding the writes as dead stores.
        self.enc.fill(0);
        self.dec.fill(0);
        core::hint::black_box(&self.enc);
        core::hint::black_box(&self.dec);
    }
}

/// One full encryption through a `W`-word schedule. `W` is a compile-time
/// constant, so the round count (`W / 4 - 1`) unrolls and every round-key
/// access is bounds-check free after monomorphisation.
#[inline]
fn encrypt_words<const W: usize>(block: &mut [u8; AES_BLOCK_SIZE], rk: &[u32; W]) {
    let rounds = W / 4 - 1;
    let mut s0 = u32::from_be_bytes([block[0], block[1], block[2], block[3]]) ^ rk[0];
    let mut s1 = u32::from_be_bytes([block[4], block[5], block[6], block[7]]) ^ rk[1];
    let mut s2 = u32::from_be_bytes([block[8], block[9], block[10], block[11]]) ^ rk[2];
    let mut s3 = u32::from_be_bytes([block[12], block[13], block[14], block[15]]) ^ rk[3];

    let mut k = 4;
    for _ in 1..rounds {
        let t0 = TE0[(s0 >> 24) as usize]
            ^ TE1[((s1 >> 16) & 0xff) as usize]
            ^ TE2[((s2 >> 8) & 0xff) as usize]
            ^ TE3[(s3 & 0xff) as usize]
            ^ rk[k];
        let t1 = TE0[(s1 >> 24) as usize]
            ^ TE1[((s2 >> 16) & 0xff) as usize]
            ^ TE2[((s3 >> 8) & 0xff) as usize]
            ^ TE3[(s0 & 0xff) as usize]
            ^ rk[k + 1];
        let t2 = TE0[(s2 >> 24) as usize]
            ^ TE1[((s3 >> 16) & 0xff) as usize]
            ^ TE2[((s0 >> 8) & 0xff) as usize]
            ^ TE3[(s1 & 0xff) as usize]
            ^ rk[k + 2];
        let t3 = TE0[(s3 >> 24) as usize]
            ^ TE1[((s0 >> 16) & 0xff) as usize]
            ^ TE2[((s1 >> 8) & 0xff) as usize]
            ^ TE3[(s2 & 0xff) as usize]
            ^ rk[k + 3];
        s0 = t0;
        s1 = t1;
        s2 = t2;
        s3 = t3;
        k += 4;
    }

    // Final round: SubBytes ∘ ShiftRows only (no MixColumns).
    let t0 = last_round_word(s0, s1, s2, s3, &SBOX) ^ rk[k];
    let t1 = last_round_word(s1, s2, s3, s0, &SBOX) ^ rk[k + 1];
    let t2 = last_round_word(s2, s3, s0, s1, &SBOX) ^ rk[k + 2];
    let t3 = last_round_word(s3, s0, s1, s2, &SBOX) ^ rk[k + 3];

    block[0..4].copy_from_slice(&t0.to_be_bytes());
    block[4..8].copy_from_slice(&t1.to_be_bytes());
    block[8..12].copy_from_slice(&t2.to_be_bytes());
    block[12..16].copy_from_slice(&t3.to_be_bytes());
}

#[inline]
fn decrypt_words<const W: usize>(block: &mut [u8; AES_BLOCK_SIZE], rk: &[u32; W]) {
    let rounds = W / 4 - 1;
    let mut s0 = u32::from_be_bytes([block[0], block[1], block[2], block[3]]) ^ rk[0];
    let mut s1 = u32::from_be_bytes([block[4], block[5], block[6], block[7]]) ^ rk[1];
    let mut s2 = u32::from_be_bytes([block[8], block[9], block[10], block[11]]) ^ rk[2];
    let mut s3 = u32::from_be_bytes([block[12], block[13], block[14], block[15]]) ^ rk[3];

    let mut k = 4;
    for _ in 1..rounds {
        let t0 = TD0[(s0 >> 24) as usize]
            ^ TD1[((s3 >> 16) & 0xff) as usize]
            ^ TD2[((s2 >> 8) & 0xff) as usize]
            ^ TD3[(s1 & 0xff) as usize]
            ^ rk[k];
        let t1 = TD0[(s1 >> 24) as usize]
            ^ TD1[((s0 >> 16) & 0xff) as usize]
            ^ TD2[((s3 >> 8) & 0xff) as usize]
            ^ TD3[(s2 & 0xff) as usize]
            ^ rk[k + 1];
        let t2 = TD0[(s2 >> 24) as usize]
            ^ TD1[((s1 >> 16) & 0xff) as usize]
            ^ TD2[((s0 >> 8) & 0xff) as usize]
            ^ TD3[(s3 & 0xff) as usize]
            ^ rk[k + 2];
        let t3 = TD0[(s3 >> 24) as usize]
            ^ TD1[((s2 >> 16) & 0xff) as usize]
            ^ TD2[((s1 >> 8) & 0xff) as usize]
            ^ TD3[(s0 & 0xff) as usize]
            ^ rk[k + 3];
        s0 = t0;
        s1 = t1;
        s2 = t2;
        s3 = t3;
        k += 4;
    }

    let t0 = last_round_word(s0, s3, s2, s1, &INV_SBOX) ^ rk[k];
    let t1 = last_round_word(s1, s0, s3, s2, &INV_SBOX) ^ rk[k + 1];
    let t2 = last_round_word(s2, s1, s0, s3, &INV_SBOX) ^ rk[k + 2];
    let t3 = last_round_word(s3, s2, s1, s0, &INV_SBOX) ^ rk[k + 3];

    block[0..4].copy_from_slice(&t0.to_be_bytes());
    block[4..8].copy_from_slice(&t1.to_be_bytes());
    block[8..12].copy_from_slice(&t2.to_be_bytes());
    block[12..16].copy_from_slice(&t3.to_be_bytes());
}

/// Assemble one final-round output word from the top/high/low/bottom bytes of
/// the four words ShiftRows (or InvShiftRows) routes into it.
#[inline]
fn last_round_word(a: u32, b: u32, c: u32, d: u32, sbox: &[u8; 256]) -> u32 {
    ((sbox[(a >> 24) as usize] as u32) << 24)
        | ((sbox[((b >> 16) & 0xff) as usize] as u32) << 16)
        | ((sbox[((c >> 8) & 0xff) as usize] as u32) << 8)
        | (sbox[(d & 0xff) as usize] as u32)
}

/// T-table AES with a 128-bit key (10 rounds).
#[derive(Clone)]
pub(crate) struct Aes128 {
    keys: Schedule<44>,
}

impl Aes128 {
    pub(crate) fn from_slice(key: &[u8]) -> Result<Self, CryptoError> {
        Ok(Self {
            keys: Schedule::expand(key)?,
        })
    }

    #[inline]
    pub(crate) fn encrypt_block(&self, block: &mut [u8; AES_BLOCK_SIZE]) {
        encrypt_words(block, &self.keys.enc);
    }

    #[inline]
    pub(crate) fn decrypt_block(&self, block: &mut [u8; AES_BLOCK_SIZE]) {
        decrypt_words(block, &self.keys.dec);
    }
}

/// T-table AES with a 256-bit key (14 rounds).
#[derive(Clone)]
pub(crate) struct Aes256 {
    keys: Schedule<60>,
}

impl Aes256 {
    pub(crate) fn from_slice(key: &[u8]) -> Result<Self, CryptoError> {
        Ok(Self {
            keys: Schedule::expand(key)?,
        })
    }

    #[inline]
    pub(crate) fn encrypt_block(&self, block: &mut [u8; AES_BLOCK_SIZE]) {
        encrypt_words(block, &self.keys.enc);
    }

    #[inline]
    pub(crate) fn decrypt_block(&self, block: &mut [u8; AES_BLOCK_SIZE]) {
        decrypt_words(block, &self.keys.dec);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t_tables_are_consistent_rotations() {
        for x in 0..256usize {
            assert_eq!(TE1[x], TE0[x].rotate_right(8));
            assert_eq!(TE2[x], TE0[x].rotate_right(16));
            assert_eq!(TE3[x], TE0[x].rotate_right(24));
            assert_eq!(TD1[x], TD0[x].rotate_right(8));
            // The table entry must be the MixColumns image of (S[x],0,0,0).
            let s = SBOX[x] as usize;
            let expected = u32::from_be_bytes([MUL2[s], SBOX[x], SBOX[x], MUL3[s]]);
            assert_eq!(TE0[x], expected);
            let si = INV_SBOX[x] as usize;
            let expected = u32::from_be_bytes([MUL14[si], MUL9[si], MUL13[si], MUL11[si]]);
            assert_eq!(TD0[x], expected);
        }
    }

    #[test]
    fn ttable_roundtrip_both_key_sizes() {
        let c256 = Aes256::from_slice(&[7u8; 32]).unwrap();
        let c128 = Aes128::from_slice(&[7u8; 16]).unwrap();
        for i in 0..32u8 {
            let original = [i; 16];
            let mut block = original;
            c256.encrypt_block(&mut block);
            assert_ne!(block, original);
            c256.decrypt_block(&mut block);
            assert_eq!(block, original);
            c128.encrypt_block(&mut block);
            c128.decrypt_block(&mut block);
            assert_eq!(block, original);
        }
    }
}
