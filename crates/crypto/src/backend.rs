//! Runtime selection of the cryptographic backends.
//!
//! The crate ships two AES implementations (the portable fused-T-table cipher
//! and an AES-NI one built on `aesenc`/`aesdec` intrinsics) and three SHA-256
//! compression paths (scalar, an SSSE3-vectorised message schedule, and
//! SHA-NI). Which one runs is decided **once per process** from CPU feature
//! detection (`std::arch::is_x86_feature_detected!`) plus an environment
//! override, and every `Aes128`/`Aes256`/`Sha256` constructed afterwards
//! snapshots that choice. All backends are byte-for-byte equivalent — the
//! cross-backend KAT and property suites enforce it — so the selection can
//! never leak into ciphertexts, traces or attacker statistics; only wall-clock
//! speed changes.
//!
//! ## Override
//!
//! `STEGFS_CRYPTO_BACKEND` controls the choice:
//!
//! * `auto` (or unset) — fastest detected path: AES-NI and SHA-NI/SSSE3 where
//!   the CPU reports them, portable otherwise.
//! * `portable` — the pure-Rust paths (T-table AES, scalar SHA-256)
//!   everywhere, regardless of CPU support. Used by CI's cross-backend legs
//!   and the `crypto_baseline` comparison section.
//! * `aesni` — *require* the AES-NI path. If the CPU does not support it the
//!   process panics at selection time instead of silently falling back, so a
//!   benchmark labelled `aesni` is guaranteed to have measured hardware AES.
//!   SHA-256 still uses the best detected path (SHA-NI, then SSSE3).
//!
//! Any other value is a hard error — a typo must not silently benchmark the
//! wrong cipher.

use core::sync::atomic::{AtomicU8, Ordering};

/// Which AES implementation executes block operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// The pure-Rust fused-T-table cipher; compiled everywhere.
    Portable,
    /// Hardware AES via `aesenc`/`aesdec`/`aeskeygenassist` (x86-64 only).
    AesNi,
}

/// Which SHA-256 compression-function path executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sha256Backend {
    /// The pure-Rust FIPS 180-2 compression function; compiled everywhere.
    Scalar,
    /// Scalar rounds with an SSSE3-vectorised message schedule.
    Ssse3,
    /// Hardware compression via `sha256msg1`/`sha256msg2`/`sha256rnds2`.
    ShaNi,
}

impl Backend {
    /// Whether this backend can run on the current CPU.
    pub fn is_available(self) -> bool {
        match self {
            Backend::Portable => true,
            Backend::AesNi => aesni_detected(),
        }
    }

    /// Stable lowercase name used in benchmark labels and error messages.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Portable => "portable",
            Backend::AesNi => "aesni",
        }
    }
}

impl Sha256Backend {
    /// Whether this backend can run on the current CPU.
    pub fn is_available(self) -> bool {
        match self {
            Sha256Backend::Scalar => true,
            Sha256Backend::Ssse3 => ssse3_detected(),
            Sha256Backend::ShaNi => shani_detected(),
        }
    }

    /// Stable lowercase name used in benchmark labels and error messages.
    pub fn name(self) -> &'static str {
        match self {
            Sha256Backend::Scalar => "scalar",
            Sha256Backend::Ssse3 => "ssse3",
            Sha256Backend::ShaNi => "sha-ni",
        }
    }
}

#[cfg(target_arch = "x86_64")]
fn aesni_detected() -> bool {
    std::arch::is_x86_feature_detected!("aes")
}

#[cfg(not(target_arch = "x86_64"))]
fn aesni_detected() -> bool {
    false
}

/// SHA-NI compression also uses `palignr` (SSSE3) and `pblendw` (SSE4.1).
#[cfg(target_arch = "x86_64")]
fn shani_detected() -> bool {
    std::arch::is_x86_feature_detected!("sha")
        && std::arch::is_x86_feature_detected!("ssse3")
        && std::arch::is_x86_feature_detected!("sse4.1")
}

#[cfg(not(target_arch = "x86_64"))]
fn shani_detected() -> bool {
    false
}

#[cfg(target_arch = "x86_64")]
fn ssse3_detected() -> bool {
    std::arch::is_x86_feature_detected!("ssse3")
}

#[cfg(not(target_arch = "x86_64"))]
fn ssse3_detected() -> bool {
    false
}

// Encodings for the cached selections. 0 doubles as "not yet selected".
const UNSET: u8 = 0;
const AES_PORTABLE: u8 = 1;
const AES_AESNI: u8 = 2;
const SHA_SCALAR: u8 = 1;
const SHA_SSSE3: u8 = 2;
const SHA_SHANI: u8 = 3;

static AES_ACTIVE: AtomicU8 = AtomicU8::new(UNSET);
static SHA_ACTIVE: AtomicU8 = AtomicU8::new(UNSET);

/// The fastest available backends, honoring the environment override.
fn resolve_from_env() -> (Backend, Sha256Backend) {
    let requested = std::env::var("STEGFS_CRYPTO_BACKEND").unwrap_or_default();
    match requested.as_str() {
        "" | "auto" => (best_aes(), best_sha()),
        "portable" => (Backend::Portable, Sha256Backend::Scalar),
        "aesni" => {
            assert!(
                Backend::AesNi.is_available(),
                "STEGFS_CRYPTO_BACKEND=aesni, but this CPU does not report AES-NI; \
                 refusing to fall back silently (use auto or portable)"
            );
            (Backend::AesNi, best_sha())
        }
        other => panic!(
            "unknown STEGFS_CRYPTO_BACKEND value {other:?} (expected auto, portable or aesni)"
        ),
    }
}

fn best_aes() -> Backend {
    if Backend::AesNi.is_available() {
        Backend::AesNi
    } else {
        Backend::Portable
    }
}

fn best_sha() -> Sha256Backend {
    if Sha256Backend::ShaNi.is_available() {
        Sha256Backend::ShaNi
    } else if Sha256Backend::Ssse3.is_available() {
        Sha256Backend::Ssse3
    } else {
        Sha256Backend::Scalar
    }
}

fn store(aes: Backend, sha: Sha256Backend) {
    let aes_code = match aes {
        Backend::Portable => AES_PORTABLE,
        Backend::AesNi => AES_AESNI,
    };
    let sha_code = match sha {
        Sha256Backend::Scalar => SHA_SCALAR,
        Sha256Backend::Ssse3 => SHA_SSSE3,
        Sha256Backend::ShaNi => SHA_SHANI,
    };
    AES_ACTIVE.store(aes_code, Ordering::Relaxed);
    SHA_ACTIVE.store(sha_code, Ordering::Relaxed);
}

fn select_if_unset() {
    if AES_ACTIVE.load(Ordering::Relaxed) == UNSET {
        let (aes, sha) = resolve_from_env();
        store(aes, sha);
    }
}

/// The AES backend new [`crate::Aes128`]/[`crate::Aes256`] instances use.
pub fn active() -> Backend {
    select_if_unset();
    match AES_ACTIVE.load(Ordering::Relaxed) {
        AES_AESNI => Backend::AesNi,
        _ => Backend::Portable,
    }
}

/// The compression path new [`crate::Sha256`] instances use.
pub fn sha256_active() -> Sha256Backend {
    select_if_unset();
    match SHA_ACTIVE.load(Ordering::Relaxed) {
        SHA_SHANI => Sha256Backend::ShaNi,
        SHA_SSSE3 => Sha256Backend::Ssse3,
        _ => Sha256Backend::Scalar,
    }
}

/// Name of the active AES backend: `"aesni"` or `"portable"`.
pub fn backend_name() -> &'static str {
    active().name()
}

/// Name of the active SHA-256 path: `"sha-ni"`, `"ssse3"` or `"scalar"`.
pub fn sha256_backend_name() -> &'static str {
    sha256_active().name()
}

/// Force the whole stack onto `backend` for every cipher and hasher
/// constructed afterwards: `Portable` selects T-table AES + scalar SHA-256,
/// `AesNi` selects hardware AES plus the best detected SHA-256 path.
///
/// Intended for benchmarks (the `crypto_baseline` forced-portable comparison
/// section) and for the determinism suite, which asserts that experiment
/// outputs are byte-identical across backends. Panics if `backend` is not
/// available on this CPU — a forced-`AesNi` measurement must never silently
/// run portable code. Instances created before the call keep their backend.
pub fn force(backend: Backend) {
    assert!(
        backend.is_available(),
        "cannot force crypto backend {:?}: not available on this CPU",
        backend
    );
    match backend {
        Backend::Portable => store(Backend::Portable, Sha256Backend::Scalar),
        Backend::AesNi => store(Backend::AesNi, best_sha()),
    }
}

/// Undo [`force`]: re-resolve from `STEGFS_CRYPTO_BACKEND` and CPU detection.
pub fn force_auto() {
    let (aes, sha) = resolve_from_env();
    store(aes, sha);
}

/// Force only the SHA-256 compression path; AES selection is untouched.
/// Panics if `backend` is not available. Used by cross-backend SHA-256/HMAC
/// equivalence tests.
pub fn force_sha256(backend: Sha256Backend) {
    assert!(
        backend.is_available(),
        "cannot force SHA-256 backend {:?}: not available on this CPU",
        backend
    );
    select_if_unset();
    let code = match backend {
        Sha256Backend::Scalar => SHA_SCALAR,
        Sha256Backend::Ssse3 => SHA_SSSE3,
        Sha256Backend::ShaNi => SHA_SHANI,
    };
    SHA_ACTIVE.store(code, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn portable_is_always_available() {
        assert!(Backend::Portable.is_available());
        assert!(Sha256Backend::Scalar.is_available());
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Backend::Portable.name(), "portable");
        assert_eq!(Backend::AesNi.name(), "aesni");
        assert_eq!(Sha256Backend::Scalar.name(), "scalar");
        assert_eq!(Sha256Backend::Ssse3.name(), "ssse3");
        assert_eq!(Sha256Backend::ShaNi.name(), "sha-ni");
    }

    #[test]
    fn active_backend_is_available_and_named() {
        let aes = active();
        assert!(aes.is_available());
        assert_eq!(backend_name(), aes.name());
        let sha = sha256_active();
        assert!(sha.is_available());
        assert_eq!(sha256_backend_name(), sha.name());
    }
}
