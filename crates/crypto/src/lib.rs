//! # stegfs-crypto
//!
//! The cryptographic substrate used by the StegFS reproduction.
//!
//! The paper (Section 6.1) states:
//!
//! > We use AES \[3\] for the block cipher, and the pseudo-random number
//! > generator is constructed from SHA256 \[4\].
//!
//! This crate therefore provides, implemented from scratch in safe Rust:
//!
//! * [`Aes128`] / [`Aes256`] — the FIPS-197 block cipher (encrypt and
//!   decrypt), implemented with compile-time fused T-tables and word-oriented
//!   state; the original byte-oriented implementation survives as the
//!   [`reference`] module that property tests compare against.
//! * [`CbcCipher`] — CBC mode over whole 16-byte blocks, exactly the
//!   `IV || data field` layout that Section 4.1.1 places in every storage block.
//! * [`Sha256`] — FIPS 180-2 SHA-256.
//! * [`HmacSha256`] — HMAC (RFC 2104) over SHA-256, used for deriving block
//!   locations and per-file keys from a file access key (FAK).
//! * [`HashDrbg`] — a SHA-256 based deterministic random bit generator in the
//!   spirit of NIST SP 800-90A Hash_DRBG, used wherever the paper requires a
//!   pseudo-random number generator (dummy-update selection, block scattering,
//!   level re-ordering permutations).
//!
//! None of this code is intended to be side-channel hardened; it exists so the
//! reproduction is self-contained and exercises the same data layout and key
//! schedule costs as the paper's prototype.
//!
//! ## Backends
//!
//! AES and SHA-256 each have hardware paths (AES-NI; SHA-NI with an SSSE3
//! fallback) selected once per process by the [`backend`] module from CPU
//! feature detection plus the `STEGFS_CRYPTO_BACKEND` environment override.
//! All backends are byte-for-byte equivalent; only throughput differs.
//!
//! `unsafe` is denied crate-wide and allowed in exactly two leaf modules (the
//! AES-NI cipher and the x86 SHA-256 compressors), where every block is a
//! `core::arch` intrinsic call guarded by runtime feature detection or an
//! unaligned 16-byte load/store with caller-checked bounds.

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod aes;
pub mod backend;
mod cbc;
mod drbg;
mod hmac;
mod keys;
mod sha256;

pub use aes::reference;
pub use aes::{Aes128, Aes256, BlockCipher, AES_BLOCK_SIZE};
pub use backend::{backend_name, sha256_backend_name, Backend, Sha256Backend};
pub use cbc::{CbcCipher, CbcError};
pub use drbg::HashDrbg;
pub use hmac::HmacSha256;
pub use keys::{AesScheduleCache, Key128, Key256, KeyError};
pub use sha256::{sha256, Sha256, SHA256_OUTPUT_SIZE};

/// Errors produced by this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CryptoError {
    /// A buffer whose length must be a multiple of the AES block size was not.
    NotBlockAligned {
        /// The offending length in bytes.
        len: usize,
    },
    /// A key had the wrong length.
    BadKeyLength {
        /// Expected length in bytes.
        expected: usize,
        /// Observed length in bytes.
        got: usize,
    },
    /// An explicitly requested backend cannot run on this CPU.
    BackendUnavailable {
        /// The requested backend's [`Backend::name`].
        backend: &'static str,
    },
}

impl core::fmt::Display for CryptoError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CryptoError::NotBlockAligned { len } => {
                write!(f, "buffer length {len} is not a multiple of 16 bytes")
            }
            CryptoError::BadKeyLength { expected, got } => {
                write!(f, "bad key length: expected {expected} bytes, got {got}")
            }
            CryptoError::BackendUnavailable { backend } => {
                write!(f, "crypto backend {backend:?} is not available on this CPU")
            }
        }
    }
}

impl std::error::Error for CryptoError {}
