//! HMAC-SHA-256 (RFC 2104 / FIPS 198-1).
//!
//! Used throughout the reproduction as the keyed derivation primitive: the
//! location of a hidden file's header is derived from its access key and path
//! name (Section 4.1.2), and per-level hash-index keys in the oblivious
//! storage are derived from a logical address and a rebuild nonce
//! (Section 5.1.2).

use crate::sha256::{compress_block, Sha256, SHA256_OUTPUT_SIZE};

const BLOCK_SIZE: usize = 64;

/// Longest message that fits a single padded SHA-256 block: 55 data bytes
/// leave room for the mandatory 0x80 byte and the 8-byte length field.
const SINGLE_BLOCK_MAX: usize = 55;

/// Keyed HMAC-SHA-256 instance.
///
/// The ipad/opad digest states are computed once at construction and kept
/// pristine, so one instance can MAC any number of messages (via
/// [`HmacSha256::mac_with`]) without rehashing the key — two compression
/// functions saved per MAC, which matters on the block-location derivation
/// paths that call HMAC once per storage block.
#[derive(Clone)]
pub struct HmacSha256 {
    /// Digest state after absorbing `key ⊕ ipad`; never mutated.
    inner0: Sha256,
    /// Digest state after absorbing `key ⊕ opad`; never mutated.
    outer0: Sha256,
    /// Working copy of `inner0` driven by the incremental `update` API.
    inner: Sha256,
}

impl HmacSha256 {
    /// Create an HMAC instance from an arbitrary-length key.
    pub fn new(key: &[u8]) -> Self {
        let mut key_block = [0u8; BLOCK_SIZE];
        if key.len() > BLOCK_SIZE {
            let digest = crate::sha256::sha256(key);
            key_block[..SHA256_OUTPUT_SIZE].copy_from_slice(&digest);
        } else {
            key_block[..key.len()].copy_from_slice(key);
        }

        let mut ipad = [0x36u8; BLOCK_SIZE];
        let mut opad = [0x5cu8; BLOCK_SIZE];
        for i in 0..BLOCK_SIZE {
            ipad[i] ^= key_block[i];
            opad[i] ^= key_block[i];
        }

        let mut inner0 = Sha256::new();
        inner0.update(&ipad);
        let mut outer0 = Sha256::new();
        outer0.update(&opad);
        let inner = inner0.clone();
        Self {
            inner0,
            outer0,
            inner,
        }
    }

    /// Absorb message data.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Finish and return the 32-byte MAC.
    pub fn finalize(self) -> [u8; SHA256_OUTPUT_SIZE] {
        let inner_digest = self.inner.finalize();
        let mut outer = self.outer0;
        outer.update(&inner_digest);
        outer.finalize()
    }

    /// MAC a complete message without consuming (or disturbing) this
    /// instance: the precomputed key states are cloned, so repeated MACs
    /// under the same key skip the key-block hashing entirely.
    pub fn mac_with(&self, data: &[u8]) -> [u8; SHA256_OUTPUT_SIZE] {
        let mut inner = self.inner0.clone();
        inner.update(data);
        let inner_digest = inner.finalize();
        let mut outer = self.outer0.clone();
        outer.update(&inner_digest);
        outer.finalize()
    }

    /// [`HmacSha256::derive_u64`] against the precomputed key state.
    ///
    /// Messages of at most 55 bytes — every block-location derivation in the
    /// system — take a fast path of exactly two compression calls on stack
    /// buffers: one from the cached ipad state over the padded message, one
    /// from the cached opad state over the padded inner digest. No hasher is
    /// cloned and no incremental buffering runs; only the first 8 digest
    /// bytes are ever serialised.
    pub fn derive_u64_with(&self, data: &[u8]) -> u64 {
        if data.len() <= SINGLE_BLOCK_MAX {
            let backend = self.inner0.backend();

            // Inner hash: ipad (already compressed into `inner0`) ‖ message,
            // padded to one block. Total hashed length is 64 + data.len().
            let mut block = [0u8; BLOCK_SIZE];
            block[..data.len()].copy_from_slice(data);
            block[data.len()] = 0x80;
            let bit_len = ((BLOCK_SIZE + data.len()) as u64) * 8;
            block[56..].copy_from_slice(&bit_len.to_be_bytes());
            let mut state = self.inner0.chaining_state();
            compress_block(backend, &mut state, &block);

            // Outer hash: opad (cached in `outer0`) ‖ 32-byte inner digest,
            // again exactly one padded block (64 + 32 bytes hashed).
            let mut block = [0u8; BLOCK_SIZE];
            for (chunk, word) in block.chunks_exact_mut(4).zip(state) {
                chunk.copy_from_slice(&word.to_be_bytes());
            }
            block[SHA256_OUTPUT_SIZE] = 0x80;
            let bit_len = ((BLOCK_SIZE + SHA256_OUTPUT_SIZE) as u64) * 8;
            block[56..].copy_from_slice(&bit_len.to_be_bytes());
            let mut state = self.outer0.chaining_state();
            compress_block(backend, &mut state, &block);

            return ((state[0] as u64) << 32) | state[1] as u64;
        }
        let mac = self.mac_with(data);
        u64::from_be_bytes([
            mac[0], mac[1], mac[2], mac[3], mac[4], mac[5], mac[6], mac[7],
        ])
    }

    /// One-shot HMAC of `data` under `key`.
    pub fn mac(key: &[u8], data: &[u8]) -> [u8; SHA256_OUTPUT_SIZE] {
        Self::new(key).mac_with(data)
    }

    /// Derive a 64-bit value from `key` and `data`; convenience helper used to
    /// map (FAK, path) pairs and (logical block, nonce) pairs onto block
    /// numbers.
    pub fn derive_u64(key: &[u8], data: &[u8]) -> u64 {
        let mac = Self::mac(key, data);
        u64::from_be_bytes([
            mac[0], mac[1], mac[2], mac[3], mac[4], mac[5], mac[6], mac[7],
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(digest: &[u8]) -> String {
        digest.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn rfc4231_test_case_1() {
        let key = [0x0bu8; 20];
        let mac = HmacSha256::mac(&key, b"Hi There");
        assert_eq!(
            hex(&mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_test_case_2() {
        let mac = HmacSha256::mac(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_test_case_3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let mac = HmacSha256::mac(&key, &data);
        assert_eq!(
            hex(&mac),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_test_case_4() {
        let key: Vec<u8> = (0x01..=0x19).collect();
        let data = [0xcdu8; 50];
        let mac = HmacSha256::mac(&key, &data);
        assert_eq!(
            hex(&mac),
            "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b"
        );
    }

    #[test]
    fn rfc4231_test_case_5_truncated() {
        // RFC 4231 specifies the output truncated to 128 bits for this case.
        let key = [0x0cu8; 20];
        let mac = HmacSha256::mac(&key, b"Test With Truncation");
        assert_eq!(hex(&mac[..16]), "a3b6167473100ee06e0c796c2955552b");
    }

    #[test]
    fn rfc4231_test_case_6_long_key() {
        let key = [0xaau8; 131];
        let mac = HmacSha256::mac(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex(&mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn rfc4231_test_case_7_long_key_and_data() {
        let key = [0xaau8; 131];
        let mac = HmacSha256::mac(
            &key,
            b"This is a test using a larger than block-size key and a larger than \
              block-size data. The key needs to be hashed before being used by the \
              HMAC algorithm.",
        );
        assert_eq!(
            hex(&mac),
            "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2"
        );
    }

    #[test]
    fn mac_with_reuses_key_state() {
        let keyed = HmacSha256::new(b"reusable key");
        for msg in [b"first".as_slice(), b"second", b"", b"first"] {
            assert_eq!(keyed.mac_with(msg), HmacSha256::mac(b"reusable key", msg));
            assert_eq!(
                keyed.derive_u64_with(msg),
                HmacSha256::derive_u64(b"reusable key", msg)
            );
        }
    }

    #[test]
    fn incremental_matches_oneshot() {
        let key = b"some key material";
        let data = b"the quick brown fox jumps over the lazy dog";
        let oneshot = HmacSha256::mac(key, data);
        let mut h = HmacSha256::new(key);
        for chunk in data.chunks(7) {
            h.update(chunk);
        }
        assert_eq!(h.finalize(), oneshot);
    }

    #[test]
    fn derive_u64_fast_path_matches_generic_mac() {
        // Straddle the 55-byte single-block fast-path boundary; every length
        // must agree with the full MAC truncated to its first 8 bytes.
        let keyed = HmacSha256::new(b"fast path key");
        for len in [0usize, 1, 8, 31, 54, 55, 56, 57, 120] {
            let data: Vec<u8> = (0..len).map(|i| (i * 13 % 251) as u8).collect();
            let mac = keyed.mac_with(&data);
            let expected = u64::from_be_bytes(mac[..8].try_into().unwrap());
            assert_eq!(keyed.derive_u64_with(&data), expected, "length {len}");
        }
    }

    #[test]
    fn derive_u64_is_deterministic_and_key_sensitive() {
        let a = HmacSha256::derive_u64(b"key-a", b"/secret/report.doc");
        let b = HmacSha256::derive_u64(b"key-a", b"/secret/report.doc");
        let c = HmacSha256::derive_u64(b"key-b", b"/secret/report.doc");
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
