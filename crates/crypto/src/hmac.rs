//! HMAC-SHA-256 (RFC 2104 / FIPS 198-1).
//!
//! Used throughout the reproduction as the keyed derivation primitive: the
//! location of a hidden file's header is derived from its access key and path
//! name (Section 4.1.2), and per-level hash-index keys in the oblivious
//! storage are derived from a logical address and a rebuild nonce
//! (Section 5.1.2).

use crate::sha256::{Sha256, SHA256_OUTPUT_SIZE};

const BLOCK_SIZE: usize = 64;

/// Keyed HMAC-SHA-256 instance.
#[derive(Clone)]
pub struct HmacSha256 {
    inner: Sha256,
    outer: Sha256,
}

impl HmacSha256 {
    /// Create an HMAC instance from an arbitrary-length key.
    pub fn new(key: &[u8]) -> Self {
        let mut key_block = [0u8; BLOCK_SIZE];
        if key.len() > BLOCK_SIZE {
            let digest = crate::sha256::sha256(key);
            key_block[..SHA256_OUTPUT_SIZE].copy_from_slice(&digest);
        } else {
            key_block[..key.len()].copy_from_slice(key);
        }

        let mut ipad = [0x36u8; BLOCK_SIZE];
        let mut opad = [0x5cu8; BLOCK_SIZE];
        for i in 0..BLOCK_SIZE {
            ipad[i] ^= key_block[i];
            opad[i] ^= key_block[i];
        }

        let mut inner = Sha256::new();
        inner.update(&ipad);
        let mut outer = Sha256::new();
        outer.update(&opad);
        Self { inner, outer }
    }

    /// Absorb message data.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Finish and return the 32-byte MAC.
    pub fn finalize(mut self) -> [u8; SHA256_OUTPUT_SIZE] {
        let inner_digest = self.inner.finalize();
        self.outer.update(&inner_digest);
        self.outer.finalize()
    }

    /// One-shot HMAC of `data` under `key`.
    pub fn mac(key: &[u8], data: &[u8]) -> [u8; SHA256_OUTPUT_SIZE] {
        let mut h = Self::new(key);
        h.update(data);
        h.finalize()
    }

    /// Derive a 64-bit value from `key` and `data`; convenience helper used to
    /// map (FAK, path) pairs and (logical block, nonce) pairs onto block
    /// numbers.
    pub fn derive_u64(key: &[u8], data: &[u8]) -> u64 {
        let mac = Self::mac(key, data);
        u64::from_be_bytes([
            mac[0], mac[1], mac[2], mac[3], mac[4], mac[5], mac[6], mac[7],
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(digest: &[u8]) -> String {
        digest.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn rfc4231_test_case_1() {
        let key = [0x0bu8; 20];
        let mac = HmacSha256::mac(&key, b"Hi There");
        assert_eq!(
            hex(&mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_test_case_2() {
        let mac = HmacSha256::mac(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_test_case_3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let mac = HmacSha256::mac(&key, &data);
        assert_eq!(
            hex(&mac),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_test_case_6_long_key() {
        let key = [0xaau8; 131];
        let mac = HmacSha256::mac(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex(&mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let key = b"some key material";
        let data = b"the quick brown fox jumps over the lazy dog";
        let oneshot = HmacSha256::mac(key, data);
        let mut h = HmacSha256::new(key);
        for chunk in data.chunks(7) {
            h.update(chunk);
        }
        assert_eq!(h.finalize(), oneshot);
    }

    #[test]
    fn derive_u64_is_deterministic_and_key_sensitive() {
        let a = HmacSha256::derive_u64(b"key-a", b"/secret/report.doc");
        let b = HmacSha256::derive_u64(b"key-a", b"/secret/report.doc");
        let c = HmacSha256::derive_u64(b"key-b", b"/secret/report.doc");
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
