//! SHA-256 based deterministic random bit generator.
//!
//! The paper (Section 6.1): "the pseudo-random number generator is constructed
//! from SHA256". `HashDrbg` follows the shape of NIST SP 800-90A's Hash_DRBG:
//! an internal value `V` and constant `C` derived from the seed, output blocks
//! produced by hashing a counter chained with `V`, and a reseed operation that
//! folds new entropy into the state.
//!
//! The generator is deterministic for a given seed, which the reproduction
//! relies on: experiments become reproducible and property tests can replay
//! exact block-selection sequences.

use crate::sha256::{sha256, Sha256};

/// Deterministic random bit generator backed by SHA-256.
#[derive(Clone)]
pub struct HashDrbg {
    v: [u8; 32],
    c: [u8; 32],
    reseed_counter: u64,
    /// Buffered output bytes not yet handed to the caller.
    buffer: Vec<u8>,
}

impl HashDrbg {
    /// Instantiate from arbitrary seed material.
    pub fn new(seed: &[u8]) -> Self {
        let mut v_input = Vec::with_capacity(seed.len() + 1);
        v_input.push(0x01u8);
        v_input.extend_from_slice(seed);
        let v = sha256(&v_input);

        let mut c_input = Vec::with_capacity(seed.len() + 1);
        c_input.push(0x02u8);
        c_input.extend_from_slice(seed);
        let c = sha256(&c_input);

        Self {
            v,
            c,
            reseed_counter: 1,
            buffer: Vec::new(),
        }
    }

    /// Instantiate from a 64-bit seed; convenience for tests and experiments.
    pub fn from_u64(seed: u64) -> Self {
        Self::new(&seed.to_be_bytes())
    }

    /// Fold additional entropy into the generator state.
    pub fn reseed(&mut self, extra: &[u8]) {
        let mut h = Sha256::new();
        h.update(&[0x03]);
        h.update(&self.v);
        h.update(extra);
        self.v = h.finalize();
        let mut h = Sha256::new();
        h.update(&[0x04]);
        h.update(&self.c);
        h.update(extra);
        self.c = h.finalize();
        self.reseed_counter = self.reseed_counter.wrapping_add(1);
        self.buffer.clear();
    }

    fn refill(&mut self) {
        // Output block: SHA-256(V); then V = V + C + reseed_counter (mod 2^256).
        let out = sha256(&self.v);
        self.buffer.extend_from_slice(&out);
        // Update V.
        let mut carry = 0u16;
        let counter_bytes = self.reseed_counter.to_be_bytes();
        for i in (0..32).rev() {
            let counter_byte = if i >= 24 { counter_bytes[i - 24] } else { 0 };
            let sum = self.v[i] as u16 + self.c[i] as u16 + counter_byte as u16 + carry;
            self.v[i] = (sum & 0xff) as u8;
            carry = sum >> 8;
        }
        self.reseed_counter = self.reseed_counter.wrapping_add(1);
    }

    /// Fill `dest` with pseudo-random bytes.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut written = 0;
        while written < dest.len() {
            if self.buffer.is_empty() {
                self.refill();
            }
            let take = self.buffer.len().min(dest.len() - written);
            dest[written..written + take].copy_from_slice(&self.buffer[..take]);
            self.buffer.drain(..take);
            written += take;
        }
    }

    /// Produce a vector of `n` pseudo-random bytes.
    pub fn bytes(&mut self, n: usize) -> Vec<u8> {
        let mut v = vec![0u8; n];
        self.fill_bytes(&mut v);
        v
    }

    /// Next pseudo-random `u64`.
    pub fn next_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.fill_bytes(&mut b);
        u64::from_be_bytes(b)
    }

    /// Next pseudo-random `u32`.
    pub fn next_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.fill_bytes(&mut b);
        u32::from_be_bytes(b)
    }

    /// Uniform value in `[0, bound)` using rejection sampling to avoid modulo
    /// bias. `bound` must be non-zero.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be non-zero");
        if bound == 1 {
            return 0;
        }
        // Largest multiple of bound that fits in u64.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Fisher–Yates shuffle of a slice, used for level re-ordering
    /// permutations in the oblivious storage.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        if items.len() < 2 {
            return;
        }
        for i in (1..items.len()).rev() {
            let j = self.gen_range(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

impl core::fmt::Debug for HashDrbg {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // Never print internal state.
        f.debug_struct("HashDrbg")
            .field("reseed_counter", &self.reseed_counter)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = HashDrbg::from_u64(42);
        let mut b = HashDrbg::from_u64(42);
        assert_eq!(a.bytes(100), b.bytes(100));
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = HashDrbg::from_u64(1);
        let mut b = HashDrbg::from_u64(2);
        assert_ne!(a.bytes(64), b.bytes(64));
    }

    #[test]
    fn reseed_changes_stream() {
        let mut a = HashDrbg::from_u64(7);
        let mut b = HashDrbg::from_u64(7);
        b.reseed(b"extra entropy");
        assert_ne!(a.bytes(64), b.bytes(64));
    }

    #[test]
    fn gen_range_respects_bound() {
        let mut rng = HashDrbg::from_u64(123);
        for bound in [1u64, 2, 3, 7, 100, 1 << 40] {
            for _ in 0..200 {
                assert!(rng.gen_range(bound) < bound);
            }
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = HashDrbg::from_u64(999);
        let bound = 10u64;
        let mut counts = [0usize; 10];
        let samples = 50_000;
        for _ in 0..samples {
            counts[rng.gen_range(bound) as usize] += 1;
        }
        let expected = samples as f64 / bound as f64;
        for (i, &c) in counts.iter().enumerate() {
            let deviation = (c as f64 - expected).abs() / expected;
            assert!(deviation < 0.05, "bucket {i} deviates by {deviation}");
        }
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = HashDrbg::from_u64(5);
        for _ in 0..1000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = HashDrbg::from_u64(77);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        // With 100 elements the identity permutation is astronomically
        // unlikely.
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn byte_stream_is_balanced() {
        // Rough sanity check that bit frequencies are near 50 %.
        let mut rng = HashDrbg::from_u64(31337);
        let bytes = rng.bytes(64 * 1024);
        let ones: u64 = bytes.iter().map(|b| b.count_ones() as u64).sum();
        let total_bits = (bytes.len() * 8) as f64;
        let ratio = ones as f64 / total_bits;
        assert!((0.49..0.51).contains(&ratio), "bit ratio {ratio}");
    }
}
