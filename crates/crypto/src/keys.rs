//! Fixed-size key wrappers with derivation helpers.

use crate::hmac::HmacSha256;
use crate::sha256::sha256;

/// Error returned when constructing a key from a wrongly-sized slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyError {
    /// Expected key length in bytes.
    pub expected: usize,
    /// Observed length in bytes.
    pub got: usize,
}

impl core::fmt::Display for KeyError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "invalid key length: expected {} bytes, got {}",
            self.expected, self.got
        )
    }
}

impl std::error::Error for KeyError {}

/// A 128-bit symmetric key.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Key128(pub [u8; 16]);

/// A 256-bit symmetric key. This is the key type used for block encryption,
/// header keys and content keys throughout the reproduction.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Key256(pub [u8; 32]);

impl Key128 {
    /// Derive a key from an arbitrary passphrase by hashing.
    pub fn from_passphrase(passphrase: &str) -> Self {
        let digest = sha256(passphrase.as_bytes());
        let mut k = [0u8; 16];
        k.copy_from_slice(&digest[..16]);
        Self(k)
    }

    /// Construct from a slice, checking the length.
    pub fn from_slice(bytes: &[u8]) -> Result<Self, KeyError> {
        if bytes.len() != 16 {
            return Err(KeyError {
                expected: 16,
                got: bytes.len(),
            });
        }
        let mut k = [0u8; 16];
        k.copy_from_slice(bytes);
        Ok(Self(k))
    }

    /// Raw bytes of the key.
    pub fn as_bytes(&self) -> &[u8; 16] {
        &self.0
    }
}

impl Key256 {
    /// Derive a key from an arbitrary passphrase by hashing.
    pub fn from_passphrase(passphrase: &str) -> Self {
        Self(sha256(passphrase.as_bytes()))
    }

    /// Construct from a slice, checking the length.
    pub fn from_slice(bytes: &[u8]) -> Result<Self, KeyError> {
        if bytes.len() != 32 {
            return Err(KeyError {
                expected: 32,
                got: bytes.len(),
            });
        }
        let mut k = [0u8; 32];
        k.copy_from_slice(bytes);
        Ok(Self(k))
    }

    /// Derive a labelled sub-key, e.g. a header key and a content key from a
    /// single file access key (Section 4.2.1 gives each hidden file a header
    /// key and a content key).
    pub fn derive(&self, label: &str) -> Key256 {
        Key256(HmacSha256::mac(&self.0, label.as_bytes()))
    }

    /// Raw bytes of the key.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }
}

impl core::fmt::Debug for Key128 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // Keys are never printed.
        write!(f, "Key128(..)")
    }
}

impl core::fmt::Debug for Key256 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Key256(..)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passphrase_derivation_is_deterministic() {
        assert_eq!(
            Key256::from_passphrase("open sesame"),
            Key256::from_passphrase("open sesame")
        );
        assert_ne!(
            Key256::from_passphrase("open sesame"),
            Key256::from_passphrase("open Sesame")
        );
    }

    #[test]
    fn from_slice_checks_length() {
        assert!(Key256::from_slice(&[0u8; 32]).is_ok());
        assert_eq!(
            Key256::from_slice(&[0u8; 31]),
            Err(KeyError {
                expected: 32,
                got: 31
            })
        );
        assert!(Key128::from_slice(&[0u8; 16]).is_ok());
        assert!(Key128::from_slice(&[0u8; 17]).is_err());
    }

    #[test]
    fn derived_subkeys_are_independent() {
        let fak = Key256::from_passphrase("file access key");
        let header = fak.derive("header");
        let content = fak.derive("content");
        assert_ne!(header, content);
        assert_ne!(header, fak);
        // Deterministic.
        assert_eq!(header, fak.derive("header"));
    }

    #[test]
    fn debug_does_not_leak_key_material() {
        let k = Key256::from_passphrase("secret");
        let printed = format!("{k:?}");
        assert!(!printed.contains("secret"));
        assert_eq!(printed, "Key256(..)");
    }
}
