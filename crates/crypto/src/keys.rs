//! Fixed-size key wrappers with derivation helpers, and a small cache of
//! expanded AES key schedules for hot paths that repeatedly seal/open blocks
//! under the same handful of keys.

use std::sync::{Arc, Mutex};

use crate::aes::Aes256;
use crate::hmac::HmacSha256;
use crate::sha256::sha256;

/// Error returned when constructing a key from a wrongly-sized slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyError {
    /// Expected key length in bytes.
    pub expected: usize,
    /// Observed length in bytes.
    pub got: usize,
}

impl core::fmt::Display for KeyError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "invalid key length: expected {} bytes, got {}",
            self.expected, self.got
        )
    }
}

impl std::error::Error for KeyError {}

/// A 128-bit symmetric key.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Key128(pub [u8; 16]);

/// A 256-bit symmetric key. This is the key type used for block encryption,
/// header keys and content keys throughout the reproduction.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Key256(pub [u8; 32]);

impl Key128 {
    /// Derive a key from an arbitrary passphrase by hashing.
    pub fn from_passphrase(passphrase: &str) -> Self {
        let digest = sha256(passphrase.as_bytes());
        let mut k = [0u8; 16];
        k.copy_from_slice(&digest[..16]);
        Self(k)
    }

    /// Construct from a slice, checking the length.
    pub fn from_slice(bytes: &[u8]) -> Result<Self, KeyError> {
        if bytes.len() != 16 {
            return Err(KeyError {
                expected: 16,
                got: bytes.len(),
            });
        }
        let mut k = [0u8; 16];
        k.copy_from_slice(bytes);
        Ok(Self(k))
    }

    /// Raw bytes of the key.
    pub fn as_bytes(&self) -> &[u8; 16] {
        &self.0
    }
}

impl Key256 {
    /// Derive a key from an arbitrary passphrase by hashing.
    pub fn from_passphrase(passphrase: &str) -> Self {
        Self(sha256(passphrase.as_bytes()))
    }

    /// Construct from a slice, checking the length.
    pub fn from_slice(bytes: &[u8]) -> Result<Self, KeyError> {
        if bytes.len() != 32 {
            return Err(KeyError {
                expected: 32,
                got: bytes.len(),
            });
        }
        let mut k = [0u8; 32];
        k.copy_from_slice(bytes);
        Ok(Self(k))
    }

    /// Derive a labelled sub-key, e.g. a header key and a content key from a
    /// single file access key (Section 4.2.1 gives each hidden file a header
    /// key and a content key).
    pub fn derive(&self, label: &str) -> Key256 {
        Key256(HmacSha256::mac(&self.0, label.as_bytes()))
    }

    /// Raw bytes of the key.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }
}

/// A small most-recently-used cache of expanded [`Aes256`] key schedules.
///
/// Every sealed-block operation needs the key schedule of its [`Key256`];
/// without a cache the schedule is re-expanded on every block touch even
/// though an agent cycles through a handful of keys (the global volume key,
/// or a few per-file content/header keys). The cache hands out shared
/// [`Arc`] handles, so a schedule can be used concurrently while newer keys
/// rotate older ones out.
pub struct AesScheduleCache {
    /// Most-recently-used first.
    entries: Mutex<Vec<(Key256, Arc<Aes256>)>>,
    capacity: usize,
}

impl AesScheduleCache {
    /// Create a cache holding at most `capacity` expanded schedules.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be non-zero");
        Self {
            entries: Mutex::new(Vec::with_capacity(capacity)),
            capacity,
        }
    }

    /// The expanded cipher for `key`, expanding and caching it on first use.
    pub fn get(&self, key: &Key256) -> Arc<Aes256> {
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(pos) = entries.iter().position(|(k, _)| k == key) {
            let entry = entries.remove(pos);
            let cipher = entry.1.clone();
            entries.insert(0, entry);
            return cipher;
        }
        let cipher = Arc::new(Aes256::new(&key.0));
        if entries.len() == self.capacity {
            entries.pop();
        }
        entries.insert(0, (*key, cipher.clone()));
        cipher
    }

    /// Number of schedules currently cached.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for AesScheduleCache {
    /// A 16-entry cache: ample for one agent's working set (global key plus
    /// the header/content keys of the files it touches between evictions).
    fn default() -> Self {
        Self::new(16)
    }
}

impl core::fmt::Debug for AesScheduleCache {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // Never print cached key material.
        f.debug_struct("AesScheduleCache")
            .field("len", &self.len())
            .field("capacity", &self.capacity)
            .finish()
    }
}

impl core::fmt::Debug for Key128 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // Keys are never printed.
        write!(f, "Key128(..)")
    }
}

impl core::fmt::Debug for Key256 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Key256(..)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passphrase_derivation_is_deterministic() {
        assert_eq!(
            Key256::from_passphrase("open sesame"),
            Key256::from_passphrase("open sesame")
        );
        assert_ne!(
            Key256::from_passphrase("open sesame"),
            Key256::from_passphrase("open Sesame")
        );
    }

    #[test]
    fn from_slice_checks_length() {
        assert!(Key256::from_slice(&[0u8; 32]).is_ok());
        assert_eq!(
            Key256::from_slice(&[0u8; 31]),
            Err(KeyError {
                expected: 32,
                got: 31
            })
        );
        assert!(Key128::from_slice(&[0u8; 16]).is_ok());
        assert!(Key128::from_slice(&[0u8; 17]).is_err());
    }

    #[test]
    fn derived_subkeys_are_independent() {
        let fak = Key256::from_passphrase("file access key");
        let header = fak.derive("header");
        let content = fak.derive("content");
        assert_ne!(header, content);
        assert_ne!(header, fak);
        // Deterministic.
        assert_eq!(header, fak.derive("header"));
    }

    #[test]
    fn schedule_cache_reuses_and_evicts() {
        use crate::{BlockCipher, CbcCipher};

        let cache = AesScheduleCache::new(2);
        let k1 = Key256::from_passphrase("one");
        let k2 = Key256::from_passphrase("two");
        let k3 = Key256::from_passphrase("three");

        let first = cache.get(&k1);
        assert!(Arc::ptr_eq(&first, &cache.get(&k1)), "hit returns same Arc");
        assert_eq!(cache.len(), 1);

        cache.get(&k2);
        cache.get(&k3); // evicts k1 (capacity 2, LRU)
        assert_eq!(cache.len(), 2);
        assert!(
            !Arc::ptr_eq(&first, &cache.get(&k1)),
            "evicted key is re-expanded"
        );

        // A cached schedule encrypts identically to a fresh one, including
        // through the CBC wrapper via the blanket Arc impl.
        let mut via_cache = [0x42u8; 16];
        cache.get(&k1).encrypt_block(&mut via_cache);
        let mut fresh = [0x42u8; 16];
        crate::Aes256::new(k1.as_bytes()).encrypt_block(&mut fresh);
        assert_eq!(via_cache, fresh);

        let cbc = CbcCipher::new(cache.get(&k1));
        let data = vec![7u8; 64];
        let sealed = cbc.encrypt(&[1u8; 16], &data).unwrap();
        assert_eq!(cbc.decrypt(&[1u8; 16], &sealed).unwrap(), data);
    }

    #[test]
    fn debug_does_not_leak_key_material() {
        let k = Key256::from_passphrase("secret");
        let printed = format!("{k:?}");
        assert!(!printed.contains("secret"));
        assert_eq!(printed, "Key256(..)");
    }
}
