//! FIPS-197 AES block cipher (128- and 256-bit keys), encryption and
//! decryption, implemented with the standard table-free byte-oriented
//! transformations.

/// The AES block size in bytes.
pub const AES_BLOCK_SIZE: usize = 16;

/// A block cipher operating on 16-byte blocks.
///
/// Both [`Aes128`] and [`Aes256`] implement this trait; the rest of the
/// workspace is generic over it so tests can plug in lighter ciphers.
pub trait BlockCipher: Send + Sync {
    /// Encrypt a single 16-byte block in place.
    fn encrypt_block(&self, block: &mut [u8; AES_BLOCK_SIZE]);
    /// Decrypt a single 16-byte block in place.
    fn decrypt_block(&self, block: &mut [u8; AES_BLOCK_SIZE]);
}

const SBOX: [u8; 256] = build_sbox();
const INV_SBOX: [u8; 256] = build_inv_sbox();

// Precomputed GF(2^8) multiplication tables for the MixColumns coefficients;
// computed at compile time so the hot path is pure table lookups.
const MUL2: [u8; 256] = build_mul_table(2);
const MUL3: [u8; 256] = build_mul_table(3);
const MUL9: [u8; 256] = build_mul_table(9);
const MUL11: [u8; 256] = build_mul_table(11);
const MUL13: [u8; 256] = build_mul_table(13);
const MUL14: [u8; 256] = build_mul_table(14);

const fn build_mul_table(factor: u8) -> [u8; 256] {
    let mut table = [0u8; 256];
    let mut i = 0;
    while i < 256 {
        table[i] = gf_mul(i as u8, factor);
        i += 1;
    }
    table
}

/// Multiply in GF(2^8) with the AES reduction polynomial 0x11b.
const fn gf_mul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    let mut i = 0;
    while i < 8 {
        if b & 1 != 0 {
            p ^= a;
        }
        let hi = a & 0x80;
        a <<= 1;
        if hi != 0 {
            a ^= 0x1b;
        }
        b >>= 1;
        i += 1;
    }
    p
}

const fn gf_inv(a: u8) -> u8 {
    // Brute-force inverse; runs at compile time only.
    if a == 0 {
        return 0;
    }
    let mut x = 1u16;
    while x < 256 {
        if gf_mul(a, x as u8) == 1 {
            return x as u8;
        }
        x += 1;
    }
    0
}

const fn build_sbox() -> [u8; 256] {
    let mut sbox = [0u8; 256];
    let mut i = 0;
    while i < 256 {
        let inv = gf_inv(i as u8);
        // Affine transformation.
        let mut x = inv;
        let mut res = inv;
        let mut c = 0;
        while c < 4 {
            x = x.rotate_left(1);
            res ^= x;
            c += 1;
        }
        sbox[i] = res ^ 0x63;
        i += 1;
    }
    sbox
}

const fn build_inv_sbox() -> [u8; 256] {
    let sbox = build_sbox();
    let mut inv = [0u8; 256];
    let mut i = 0;
    while i < 256 {
        inv[sbox[i] as usize] = i as u8;
        i += 1;
    }
    inv
}

const RCON: [u8; 15] = [
    0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36, 0x6c, 0xd8, 0xab, 0x4d, 0x9a,
];

/// Key schedule shared by both key sizes: `nk` = key length in words,
/// `nr` = number of rounds, producing `4 * (nr + 1)` words.
fn expand_key(key: &[u8], nk: usize, nr: usize) -> Vec<[u8; 4]> {
    debug_assert_eq!(key.len(), nk * 4);
    let total_words = 4 * (nr + 1);
    let mut w: Vec<[u8; 4]> = Vec::with_capacity(total_words);
    for i in 0..nk {
        w.push([key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]]);
    }
    for i in nk..total_words {
        let mut temp = w[i - 1];
        if i % nk == 0 {
            temp.rotate_left(1);
            for b in temp.iter_mut() {
                *b = SBOX[*b as usize];
            }
            temp[0] ^= RCON[i / nk - 1];
        } else if nk > 6 && i % nk == 4 {
            for b in temp.iter_mut() {
                *b = SBOX[*b as usize];
            }
        }
        let prev = w[i - nk];
        w.push([
            prev[0] ^ temp[0],
            prev[1] ^ temp[1],
            prev[2] ^ temp[2],
            prev[3] ^ temp[3],
        ]);
    }
    w
}

fn add_round_key(state: &mut [u8; 16], round_keys: &[[u8; 4]], round: usize) {
    for col in 0..4 {
        let rk = round_keys[round * 4 + col];
        for row in 0..4 {
            state[4 * col + row] ^= rk[row];
        }
    }
}

fn sub_bytes(state: &mut [u8; 16]) {
    for b in state.iter_mut() {
        *b = SBOX[*b as usize];
    }
}

fn inv_sub_bytes(state: &mut [u8; 16]) {
    for b in state.iter_mut() {
        *b = INV_SBOX[*b as usize];
    }
}

fn shift_rows(state: &mut [u8; 16]) {
    // State is column-major: state[4*col + row].
    for row in 1..4 {
        let mut tmp = [0u8; 4];
        for col in 0..4 {
            tmp[col] = state[4 * ((col + row) % 4) + row];
        }
        for col in 0..4 {
            state[4 * col + row] = tmp[col];
        }
    }
}

fn inv_shift_rows(state: &mut [u8; 16]) {
    for row in 1..4 {
        let mut tmp = [0u8; 4];
        for col in 0..4 {
            tmp[(col + row) % 4] = state[4 * col + row];
        }
        for col in 0..4 {
            state[4 * col + row] = tmp[col];
        }
    }
}

fn mix_columns(state: &mut [u8; 16]) {
    for col in 0..4 {
        let a0 = state[4 * col] as usize;
        let a1 = state[4 * col + 1] as usize;
        let a2 = state[4 * col + 2] as usize;
        let a3 = state[4 * col + 3] as usize;
        state[4 * col] = MUL2[a0] ^ MUL3[a1] ^ a2 as u8 ^ a3 as u8;
        state[4 * col + 1] = a0 as u8 ^ MUL2[a1] ^ MUL3[a2] ^ a3 as u8;
        state[4 * col + 2] = a0 as u8 ^ a1 as u8 ^ MUL2[a2] ^ MUL3[a3];
        state[4 * col + 3] = MUL3[a0] ^ a1 as u8 ^ a2 as u8 ^ MUL2[a3];
    }
}

fn inv_mix_columns(state: &mut [u8; 16]) {
    for col in 0..4 {
        let a0 = state[4 * col] as usize;
        let a1 = state[4 * col + 1] as usize;
        let a2 = state[4 * col + 2] as usize;
        let a3 = state[4 * col + 3] as usize;
        state[4 * col] = MUL14[a0] ^ MUL11[a1] ^ MUL13[a2] ^ MUL9[a3];
        state[4 * col + 1] = MUL9[a0] ^ MUL14[a1] ^ MUL11[a2] ^ MUL13[a3];
        state[4 * col + 2] = MUL13[a0] ^ MUL9[a1] ^ MUL14[a2] ^ MUL11[a3];
        state[4 * col + 3] = MUL11[a0] ^ MUL13[a1] ^ MUL9[a2] ^ MUL14[a3];
    }
}

fn encrypt_with_schedule(block: &mut [u8; 16], round_keys: &[[u8; 4]], nr: usize) {
    add_round_key(block, round_keys, 0);
    for round in 1..nr {
        sub_bytes(block);
        shift_rows(block);
        mix_columns(block);
        add_round_key(block, round_keys, round);
    }
    sub_bytes(block);
    shift_rows(block);
    add_round_key(block, round_keys, nr);
}

fn decrypt_with_schedule(block: &mut [u8; 16], round_keys: &[[u8; 4]], nr: usize) {
    add_round_key(block, round_keys, nr);
    for round in (1..nr).rev() {
        inv_shift_rows(block);
        inv_sub_bytes(block);
        add_round_key(block, round_keys, round);
        inv_mix_columns(block);
    }
    inv_shift_rows(block);
    inv_sub_bytes(block);
    add_round_key(block, round_keys, 0);
}

/// AES with a 128-bit key (10 rounds).
#[derive(Clone)]
pub struct Aes128 {
    round_keys: Vec<[u8; 4]>,
}

impl Aes128 {
    /// Number of rounds for AES-128.
    const ROUNDS: usize = 10;

    /// Construct a cipher instance from a 16-byte key.
    pub fn new(key: &[u8; 16]) -> Self {
        Self {
            round_keys: expand_key(key, 4, Self::ROUNDS),
        }
    }
}

impl BlockCipher for Aes128 {
    fn encrypt_block(&self, block: &mut [u8; AES_BLOCK_SIZE]) {
        encrypt_with_schedule(block, &self.round_keys, Self::ROUNDS);
    }

    fn decrypt_block(&self, block: &mut [u8; AES_BLOCK_SIZE]) {
        decrypt_with_schedule(block, &self.round_keys, Self::ROUNDS);
    }
}

/// AES with a 256-bit key (14 rounds). This is the cipher used throughout the
/// reproduction, matching the paper's choice of AES for the block cipher.
#[derive(Clone)]
pub struct Aes256 {
    round_keys: Vec<[u8; 4]>,
}

impl Aes256 {
    /// Number of rounds for AES-256.
    const ROUNDS: usize = 14;

    /// Construct a cipher instance from a 32-byte key.
    pub fn new(key: &[u8; 32]) -> Self {
        Self {
            round_keys: expand_key(key, 8, Self::ROUNDS),
        }
    }
}

impl BlockCipher for Aes256 {
    fn encrypt_block(&self, block: &mut [u8; AES_BLOCK_SIZE]) {
        encrypt_with_schedule(block, &self.round_keys, Self::ROUNDS);
    }

    fn decrypt_block(&self, block: &mut [u8; AES_BLOCK_SIZE]) {
        decrypt_with_schedule(block, &self.round_keys, Self::ROUNDS);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sbox_matches_known_values() {
        // Spot-check values from the FIPS-197 S-box table.
        assert_eq!(SBOX[0x00], 0x63);
        assert_eq!(SBOX[0x01], 0x7c);
        assert_eq!(SBOX[0x53], 0xed);
        assert_eq!(SBOX[0xff], 0x16);
        assert_eq!(INV_SBOX[0x63], 0x00);
        assert_eq!(INV_SBOX[0x16], 0xff);
    }

    #[test]
    fn gf_mul_known_products() {
        assert_eq!(gf_mul(0x57, 0x83), 0xc1);
        assert_eq!(gf_mul(0x57, 0x13), 0xfe);
    }

    #[test]
    fn aes128_fips197_vector() {
        // FIPS-197 Appendix B.
        let key: [u8; 16] = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let plaintext: [u8; 16] = [
            0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
            0x07, 0x34,
        ];
        let expected: [u8; 16] = [
            0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a,
            0x0b, 0x32,
        ];
        let cipher = Aes128::new(&key);
        let mut block = plaintext;
        cipher.encrypt_block(&mut block);
        assert_eq!(block, expected);
        cipher.decrypt_block(&mut block);
        assert_eq!(block, plaintext);
    }

    #[test]
    fn aes128_fips197_appendix_c1() {
        // FIPS-197 Appendix C.1 example vectors.
        let key: [u8; 16] = [
            0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d,
            0x0e, 0x0f,
        ];
        let plaintext: [u8; 16] = [
            0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
            0xee, 0xff,
        ];
        let expected: [u8; 16] = [
            0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
            0xc5, 0x5a,
        ];
        let cipher = Aes128::new(&key);
        let mut block = plaintext;
        cipher.encrypt_block(&mut block);
        assert_eq!(block, expected);
    }

    #[test]
    fn aes256_fips197_appendix_c3() {
        // FIPS-197 Appendix C.3 example vectors.
        let key: [u8; 32] = [
            0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d,
            0x0e, 0x0f, 0x10, 0x11, 0x12, 0x13, 0x14, 0x15, 0x16, 0x17, 0x18, 0x19, 0x1a, 0x1b,
            0x1c, 0x1d, 0x1e, 0x1f,
        ];
        let plaintext: [u8; 16] = [
            0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
            0xee, 0xff,
        ];
        let expected: [u8; 16] = [
            0x8e, 0xa2, 0xb7, 0xca, 0x51, 0x67, 0x45, 0xbf, 0xea, 0xfc, 0x49, 0x90, 0x4b, 0x49,
            0x60, 0x89,
        ];
        let cipher = Aes256::new(&key);
        let mut block = plaintext;
        cipher.encrypt_block(&mut block);
        assert_eq!(block, expected);
        cipher.decrypt_block(&mut block);
        assert_eq!(block, plaintext);
    }

    #[test]
    fn aes256_roundtrip_many_blocks() {
        let key = [7u8; 32];
        let cipher = Aes256::new(&key);
        for i in 0..64u8 {
            let original = [i; 16];
            let mut block = original;
            cipher.encrypt_block(&mut block);
            assert_ne!(block, original, "encryption must change the block");
            cipher.decrypt_block(&mut block);
            assert_eq!(block, original);
        }
    }

    #[test]
    fn different_keys_produce_different_ciphertexts() {
        let c1 = Aes256::new(&[1u8; 32]);
        let c2 = Aes256::new(&[2u8; 32]);
        let mut b1 = [0u8; 16];
        let mut b2 = [0u8; 16];
        c1.encrypt_block(&mut b1);
        c2.encrypt_block(&mut b2);
        assert_ne!(b1, b2);
    }
}
