//! FIPS 180-2 SHA-256, with runtime-dispatched compression backends.
//!
//! Three compression paths produce identical digests:
//!
//! * scalar — the portable FIPS 180-2 implementation; runs everywhere.
//! * SSSE3 — the same scalar rounds fed by a vectorised message schedule
//!   (σ0/σ1 over four lanes at a time, with a two-stage σ1 to resolve the
//!   `w[i+2]`/`w[i+3]` dependency inside each group of four).
//! * SHA-NI — hardware compression via `sha256rnds2`/`sha256msg1`/`sha256msg2`
//!   (two rounds per instruction).
//!
//! Each [`Sha256`] instance snapshots the process-wide selection (see
//! [`crate::backend`]) at construction, so a hasher's behaviour is fixed for
//! its lifetime. [`HmacSha256`](crate::HmacSha256)'s precomputed ipad/opad
//! states inherit whichever path was active when the MAC key was installed.

use crate::backend::{self, Sha256Backend};

/// Size of a SHA-256 digest in bytes.
pub const SHA256_OUTPUT_SIZE: usize = 32;

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Run one 64-byte block through the compression function on `backend`.
///
/// This is the single funnel every path in the crate goes through —
/// [`Sha256::update`], finalisation, and [`HmacSha256`](crate::HmacSha256)'s
/// single-block `derive_u64` fast path.
pub(crate) fn compress_block(backend: Sha256Backend, state: &mut [u32; 8], block: &[u8; 64]) {
    match backend {
        Sha256Backend::Scalar => compress_scalar(state, block),
        #[cfg(target_arch = "x86_64")]
        Sha256Backend::Ssse3 => x86::compress_ssse3(state, block),
        #[cfg(target_arch = "x86_64")]
        Sha256Backend::ShaNi => x86::compress_shani(state, block),
        // Unreachable in practice: these backends never report available off
        // x86-64, so selection cannot produce them. Scalar output is
        // identical anyway.
        #[cfg(not(target_arch = "x86_64"))]
        Sha256Backend::Ssse3 | Sha256Backend::ShaNi => compress_scalar(state, block),
    }
}

fn compress_scalar(state: &mut [u32; 8], block: &[u8; 64]) {
    let mut w = [0u32; 64];
    for (i, chunk) in block.chunks_exact(4).enumerate() {
        w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
    }
    for i in 16..64 {
        let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
        let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
        w[i] = w[i - 16]
            .wrapping_add(s0)
            .wrapping_add(w[i - 7])
            .wrapping_add(s1);
    }
    rounds(state, &w);
}

/// The 64 compression rounds over an already-expanded message schedule.
/// Shared by the scalar and SSSE3 paths (SSSE3 only vectorises the schedule).
fn rounds(state: &mut [u32; 8], w: &[u32; 64]) {
    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
    for i in 0..64 {
        let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
        let ch = (e & f) ^ ((!e) & g);
        let temp1 = h
            .wrapping_add(s1)
            .wrapping_add(ch)
            .wrapping_add(K[i])
            .wrapping_add(w[i]);
        let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
        let maj = (a & b) ^ (a & c) ^ (b & c);
        let temp2 = s0.wrapping_add(maj);
        h = g;
        g = f;
        f = e;
        e = d.wrapping_add(temp1);
        d = c;
        c = b;
        b = a;
        a = temp1.wrapping_add(temp2);
    }

    state[0] = state[0].wrapping_add(a);
    state[1] = state[1].wrapping_add(b);
    state[2] = state[2].wrapping_add(c);
    state[3] = state[3].wrapping_add(d);
    state[4] = state[4].wrapping_add(e);
    state[5] = state[5].wrapping_add(f);
    state[6] = state[6].wrapping_add(g);
    state[7] = state[7].wrapping_add(h);
}

/// The x86-64 hardware compression paths. `unsafe` here is confined to
/// `core::arch` intrinsics reached only through backends whose
/// [`Sha256Backend::is_available`] detection passed, plus unaligned 16-byte
/// loads/stores over arrays whose bounds are statically known.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod x86 {
    use super::{rounds, K};
    use core::arch::x86_64::{
        __m128i, _mm_add_epi32, _mm_alignr_epi8, _mm_blend_epi16, _mm_loadu_si128, _mm_set_epi64x,
        _mm_sha256msg1_epu32, _mm_sha256msg2_epu32, _mm_sha256rnds2_epu32, _mm_shuffle_epi32,
        _mm_shuffle_epi8, _mm_slli_epi32, _mm_slli_si128, _mm_srli_epi32, _mm_srli_si128,
        _mm_storeu_si128, _mm_xor_si128,
    };

    /// `pshufb` mask flipping each 32-bit lane from big-endian message bytes
    /// to native words.
    #[target_feature(enable = "sse2")]
    fn flip_mask() -> __m128i {
        _mm_set_epi64x(
            0x0c0d_0e0f_0809_0a0bu64 as i64,
            0x0405_0607_0001_0203u64 as i64,
        )
    }

    /// σ0 over four lanes: `rotr7 ^ rotr18 ^ shr3`, with each rotate built
    /// from a shift pair (the halves cannot overlap, so XOR equals OR).
    #[target_feature(enable = "sse2")]
    fn sigma0(v: __m128i) -> __m128i {
        let r7 = _mm_xor_si128(_mm_srli_epi32(v, 7), _mm_slli_epi32(v, 25));
        let r18 = _mm_xor_si128(_mm_srli_epi32(v, 18), _mm_slli_epi32(v, 14));
        _mm_xor_si128(_mm_xor_si128(r7, r18), _mm_srli_epi32(v, 3))
    }

    /// σ1 over four lanes: `rotr17 ^ rotr19 ^ shr10`. Note σ1(0) = 0, which
    /// the two-stage schedule below relies on.
    #[target_feature(enable = "sse2")]
    fn sigma1(v: __m128i) -> __m128i {
        let r17 = _mm_xor_si128(_mm_srli_epi32(v, 17), _mm_slli_epi32(v, 15));
        let r19 = _mm_xor_si128(_mm_srli_epi32(v, 19), _mm_slli_epi32(v, 13));
        _mm_xor_si128(_mm_xor_si128(r17, r19), _mm_srli_epi32(v, 10))
    }

    /// Message-schedule expansion four words at a time. The recurrence's only
    /// intra-group dependency is σ1: `w[i+2]`/`w[i+3]` need `w[i]`/`w[i+1]`,
    /// so σ1 is applied in two stages — first to `(w[i-2], w[i-1], 0, 0)`,
    /// finalising lanes 0–1, then to the partial result shifted up by two
    /// lanes, finalising lanes 2–3 (σ1(0) = 0 leaves lanes 0–1 untouched).
    #[target_feature(enable = "ssse3")]
    fn schedule_ssse3(block: &[u8; 64]) -> [u32; 64] {
        let flip = flip_mask();
        let mut w = [0u32; 64];
        for i in 0..4 {
            // SAFETY: `block` holds 64 readable bytes, `w` holds 64 writable
            // words; unaligned access is allowed by loadu/storeu.
            unsafe {
                let m = _mm_loadu_si128(block.as_ptr().add(16 * i).cast());
                _mm_storeu_si128(w.as_mut_ptr().add(4 * i).cast(), _mm_shuffle_epi8(m, flip));
            }
        }
        let mut i = 16;
        while i < 64 {
            // SAFETY: all four loads start at least 4 words before `i` ≤ 60,
            // and the store writes w[i..i+4] with i + 4 ≤ 64.
            unsafe {
                let w16 = _mm_loadu_si128(w.as_ptr().add(i - 16).cast());
                let w15 = _mm_loadu_si128(w.as_ptr().add(i - 15).cast());
                let w7 = _mm_loadu_si128(w.as_ptr().add(i - 7).cast());
                let w4 = _mm_loadu_si128(w.as_ptr().add(i - 4).cast());
                let mut t = _mm_add_epi32(_mm_add_epi32(w16, sigma0(w15)), w7);
                t = _mm_add_epi32(t, sigma1(_mm_srli_si128(w4, 8)));
                t = _mm_add_epi32(t, sigma1(_mm_slli_si128(t, 8)));
                _mm_storeu_si128(w.as_mut_ptr().add(i).cast(), t);
            }
            i += 4;
        }
        w
    }

    pub(super) fn compress_ssse3(state: &mut [u32; 8], block: &[u8; 64]) {
        // SAFETY: this path is only selected when SSSE3 detection passed
        // (`Sha256Backend::Ssse3.is_available()`).
        let w = unsafe { schedule_ssse3(block) };
        rounds(state, &w);
    }

    /// One block through the SHA extensions. State lives in two registers in
    /// the `ABEF`/`CDGH` packing `sha256rnds2` expects; each loop iteration
    /// retires four rounds (two per instruction) while `sha256msg1`/`msg2`
    /// expand the next message group in flight.
    #[target_feature(enable = "sha,ssse3,sse4.1")]
    fn compress(state: &mut [u32; 8], block: &[u8; 64]) {
        // Repack (a,b,c,d)(e,f,g,h) into ABEF/CDGH.
        // SAFETY: `state` holds 8 readable words.
        let (lo, hi) = unsafe {
            (
                _mm_loadu_si128(state.as_ptr().cast()),
                _mm_loadu_si128(state.as_ptr().add(4).cast()),
            )
        };
        let tmp = _mm_shuffle_epi32(lo, 0xB1); // CDAB
        let st1 = _mm_shuffle_epi32(hi, 0x1B); // EFGH
        let mut state0 = _mm_alignr_epi8(tmp, st1, 8); // ABEF
        let mut state1 = _mm_blend_epi16(st1, tmp, 0xF0); // CDGH

        let flip = flip_mask();
        let mut w = [_mm_set_epi64x(0, 0); 4];
        for (i, lane) in w.iter_mut().enumerate() {
            // SAFETY: `block` holds 64 readable bytes.
            let m = unsafe { _mm_loadu_si128(block.as_ptr().add(16 * i).cast()) };
            *lane = _mm_shuffle_epi8(m, flip);
        }

        let abef_save = state0;
        let cdgh_save = state1;
        for j in 0..16 {
            // SAFETY: `K` holds 64 words; 4 * j + 4 ≤ 64.
            let k = unsafe { _mm_loadu_si128(K.as_ptr().add(4 * j).cast()) };
            let wk = _mm_add_epi32(w[j % 4], k);
            state1 = _mm_sha256rnds2_epu32(state1, state0, wk);
            state0 = _mm_sha256rnds2_epu32(state0, state1, _mm_shuffle_epi32(wk, 0x0E));
            if j < 12 {
                // w[4(j+4)..] = msg2(msg1(w_j, w_{j+1}) + alignr(w_{j+3},
                // w_{j+2}, 4), w_{j+3}) — the full FIPS 180-2 recurrence.
                let t = _mm_alignr_epi8(w[(j + 3) % 4], w[(j + 2) % 4], 4);
                w[j % 4] = _mm_sha256msg2_epu32(
                    _mm_add_epi32(_mm_sha256msg1_epu32(w[j % 4], w[(j + 1) % 4]), t),
                    w[(j + 3) % 4],
                );
            }
        }
        state0 = _mm_add_epi32(state0, abef_save);
        state1 = _mm_add_epi32(state1, cdgh_save);

        // Unpack ABEF/CDGH back to (a..d)(e..h).
        let tmp = _mm_shuffle_epi32(state0, 0x1B); // FEBA
        let st1 = _mm_shuffle_epi32(state1, 0xB1); // DCHG
        let out_lo = _mm_blend_epi16(tmp, st1, 0xF0); // DCBA
        let out_hi = _mm_alignr_epi8(st1, tmp, 8); // HGFE
                                                   // SAFETY: `state` holds 8 writable words.
        unsafe {
            _mm_storeu_si128(state.as_mut_ptr().cast(), out_lo);
            _mm_storeu_si128(state.as_mut_ptr().add(4).cast(), out_hi);
        }
    }

    pub(super) fn compress_shani(state: &mut [u32; 8], block: &[u8; 64]) {
        // SAFETY: this path is only selected when SHA-NI detection passed
        // (`Sha256Backend::ShaNi.is_available()` checks sha + ssse3 + sse4.1).
        unsafe { compress(state, block) }
    }
}

/// Incremental SHA-256 hasher.
///
/// ```
/// use stegfs_crypto::Sha256;
/// let mut h = Sha256::new();
/// h.update(b"abc");
/// let digest = h.finalize();
/// assert_eq!(digest[0], 0xba);
/// ```
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buffer: [u8; 64],
    buffer_len: usize,
    total_len: u64,
    backend: Sha256Backend,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Create a fresh hasher on the active backend (see [`crate::backend`]).
    pub fn new() -> Self {
        Self::with_backend(backend::sha256_active())
    }

    /// Create a hasher on an explicitly chosen compression path. Used by the
    /// cross-backend equivalence suites; production code should use
    /// [`Self::new`] and the process-wide selection.
    ///
    /// # Panics
    /// Panics if `backend` is not available on this CPU.
    pub fn with_backend(backend: Sha256Backend) -> Self {
        assert!(
            backend.is_available(),
            "SHA-256 backend {:?} is not available on this CPU",
            backend
        );
        Self {
            state: H0,
            buffer: [0u8; 64],
            buffer_len: 0,
            total_len: 0,
            backend,
        }
    }

    /// Which compression path this hasher snapshotted at construction.
    pub fn backend(&self) -> Sha256Backend {
        self.backend
    }

    /// The current chaining state. Only meaningful at a 64-byte boundary
    /// (`buffer_len == 0`); the HMAC fast path relies on exactly that after
    /// absorbing the one-block ipad/opad.
    pub(crate) fn chaining_state(&self) -> [u32; 8] {
        debug_assert_eq!(self.buffer_len, 0, "state read mid-block");
        self.state
    }

    /// Absorb `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut input = data;
        if self.buffer_len > 0 {
            let need = 64 - self.buffer_len;
            let take = need.min(input.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&input[..take]);
            self.buffer_len += take;
            input = &input[take..];
            if self.buffer_len == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffer_len = 0;
            }
        }
        while input.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&input[..64]);
            self.compress(&block);
            input = &input[64..];
        }
        if !input.is_empty() {
            self.buffer[..input.len()].copy_from_slice(input);
            self.buffer_len = input.len();
        }
    }

    /// Finish the computation and return the 32-byte digest.
    pub fn finalize(mut self) -> [u8; SHA256_OUTPUT_SIZE] {
        let bit_len = self.total_len.wrapping_mul(8);
        // Append 0x80 then zero padding then the 64-bit length.
        self.update_padding_byte(0x80);
        while self.buffer_len != 56 {
            self.update_padding_byte(0x00);
        }
        let len_bytes = bit_len.to_be_bytes();
        self.buffer[56..64].copy_from_slice(&len_bytes);
        let block = self.buffer;
        self.compress(&block);

        let mut out = [0u8; SHA256_OUTPUT_SIZE];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn update_padding_byte(&mut self, byte: u8) {
        self.buffer[self.buffer_len] = byte;
        self.buffer_len += 1;
        if self.buffer_len == 64 {
            let block = self.buffer;
            self.compress(&block);
            self.buffer_len = 0;
        }
    }

    fn compress(&mut self, block: &[u8; 64]) {
        compress_block(self.backend, &mut self.state, block);
    }
}

/// One-shot SHA-256 of `data`.
pub fn sha256(data: &[u8]) -> [u8; SHA256_OUTPUT_SIZE] {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(digest: &[u8]) -> String {
        digest.iter().map(|b| format!("{b:02x}")).collect()
    }

    fn available_backends() -> Vec<Sha256Backend> {
        [
            Sha256Backend::Scalar,
            Sha256Backend::Ssse3,
            Sha256Backend::ShaNi,
        ]
        .into_iter()
        .filter(|b| b.is_available())
        .collect()
    }

    #[test]
    fn empty_string() {
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn fips_vector_abc() {
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn fips_vector_abc_on_every_backend() {
        for b in available_backends() {
            let mut h = Sha256::with_backend(b);
            h.update(b"abc");
            assert_eq!(
                hex(&h.finalize()),
                "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
                "backend {}",
                b.name()
            );
        }
    }

    #[test]
    fn fips_vector_two_blocks() {
        assert_eq!(
            hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn million_a() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            hex(&h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let oneshot = sha256(&data);
        let mut h = Sha256::new();
        for chunk in data.chunks(37) {
            h.update(chunk);
        }
        assert_eq!(h.finalize(), oneshot);
    }

    #[test]
    fn padding_boundary_lengths() {
        // Lengths around the 55/56/64-byte padding boundaries must all work.
        for len in [0usize, 1, 54, 55, 56, 57, 63, 64, 65, 127, 128, 129] {
            let data = vec![0xabu8; len];
            let d1 = sha256(&data);
            let mut h = Sha256::new();
            for b in &data {
                h.update(core::slice::from_ref(b));
            }
            assert_eq!(h.finalize(), d1, "length {len}");
        }
    }

    #[test]
    fn backends_agree_on_many_lengths() {
        let backends = available_backends();
        let data: Vec<u8> = (0..1024u32).map(|i| (i * 31 % 257) as u8).collect();
        for len in [0usize, 1, 55, 56, 63, 64, 65, 128, 500, 1024] {
            let digests: Vec<_> = backends
                .iter()
                .map(|&b| {
                    let mut h = Sha256::with_backend(b);
                    h.update(&data[..len]);
                    h.finalize()
                })
                .collect();
            for (d, b) in digests.iter().zip(&backends) {
                assert_eq!(d, &digests[0], "backend {} diverged at {len}", b.name());
            }
        }
    }
}
