//! Property-based tests for the cryptographic substrate.

use proptest::prelude::*;

use stegfs_crypto::{
    Aes128, Aes256, Backend, BlockCipher, CbcCipher, HashDrbg, HmacSha256, Key256, Sha256,
    Sha256Backend,
};

fn aes_backends() -> Vec<Backend> {
    [Backend::Portable, Backend::AesNi]
        .into_iter()
        .filter(|b| b.is_available())
        .collect()
}

fn sha_backends() -> Vec<Sha256Backend> {
    [
        Sha256Backend::Scalar,
        Sha256Backend::Ssse3,
        Sha256Backend::ShaNi,
    ]
    .into_iter()
    .filter(|b| b.is_available())
    .collect()
}

proptest! {
    /// The word-oriented T-table AES agrees with the byte-oriented reference
    /// implementation in both directions, for both key sizes, on random keys
    /// and blocks. This is the safety net under the hot-path rewrite: the two
    /// implementations share no round code.
    #[test]
    fn ttable_matches_reference(key in any::<[u8; 32]>(), block in any::<[u8; 16]>()) {
        let fast = Aes256::new(&key);
        let slow = stegfs_crypto::reference::Aes256::new(&key);
        let mut a = block;
        let mut b = block;
        fast.encrypt_block(&mut a);
        slow.encrypt_block(&mut b);
        prop_assert_eq!(a, b);
        fast.decrypt_block(&mut a);
        slow.decrypt_block(&mut b);
        prop_assert_eq!(a, b);
        prop_assert_eq!(a, block);

        let mut key128 = [0u8; 16];
        key128.copy_from_slice(&key[..16]);
        let fast = Aes128::new(&key128);
        let slow = stegfs_crypto::reference::Aes128::new(&key128);
        let mut a = block;
        let mut b = block;
        fast.encrypt_block(&mut a);
        slow.encrypt_block(&mut b);
        prop_assert_eq!(a, b);
        fast.decrypt_block(&mut a);
        slow.decrypt_block(&mut b);
        prop_assert_eq!(a, b);
    }

    /// AES encrypt∘decrypt is the identity for both key sizes.
    #[test]
    fn aes_roundtrip(key in any::<[u8; 32]>(), block in any::<[u8; 16]>()) {
        let aes256 = Aes256::new(&key);
        let mut buf = block;
        aes256.encrypt_block(&mut buf);
        aes256.decrypt_block(&mut buf);
        prop_assert_eq!(buf, block);

        let mut key128 = [0u8; 16];
        key128.copy_from_slice(&key[..16]);
        let aes128 = Aes128::new(&key128);
        let mut buf = block;
        aes128.encrypt_block(&mut buf);
        aes128.decrypt_block(&mut buf);
        prop_assert_eq!(buf, block);
    }

    /// CBC decryption inverts encryption for arbitrary block-aligned inputs,
    /// and a different IV never yields the same ciphertext.
    #[test]
    fn cbc_roundtrip_and_iv_sensitivity(
        key in any::<[u8; 32]>(),
        iv1 in any::<[u8; 16]>(),
        iv2 in any::<[u8; 16]>(),
        blocks in 1usize..16,
        seed in any::<u8>(),
    ) {
        let data = vec![seed; blocks * 16];
        let cbc = CbcCipher::new(Aes256::new(&key));
        let c1 = cbc.encrypt(&iv1, &data).unwrap();
        prop_assert_eq!(cbc.decrypt(&iv1, &c1).unwrap(), data.clone());
        if iv1 != iv2 {
            let c2 = cbc.encrypt(&iv2, &data).unwrap();
            prop_assert_ne!(c1, c2);
        }
    }

    /// Incremental SHA-256 hashing equals one-shot hashing for any chunking.
    #[test]
    fn sha256_chunking_invariance(
        data in proptest::collection::vec(any::<u8>(), 0..2048),
        chunk in 1usize..97,
    ) {
        let oneshot = stegfs_crypto::sha256(&data);
        let mut hasher = Sha256::new();
        for piece in data.chunks(chunk) {
            hasher.update(piece);
        }
        prop_assert_eq!(hasher.finalize(), oneshot);
    }

    /// HMAC is deterministic and sensitive to both key and message.
    #[test]
    fn hmac_sensitivity(
        key in proptest::collection::vec(any::<u8>(), 1..64),
        msg in proptest::collection::vec(any::<u8>(), 0..256),
        flip in 0usize..64,
    ) {
        let mac = HmacSha256::mac(&key, &msg);
        prop_assert_eq!(HmacSha256::mac(&key, &msg), mac);
        let mut other_key = key.clone();
        other_key[flip % key.len()] ^= 0x01;
        prop_assert_ne!(HmacSha256::mac(&other_key, &msg), mac);
        let mut other_msg = msg.clone();
        if other_msg.is_empty() {
            other_msg.push(1);
        } else {
            let idx = flip % other_msg.len();
            other_msg[idx] ^= 0x01;
        }
        prop_assert_ne!(HmacSha256::mac(&key, &other_msg), mac);
    }

    /// The DRBG is a pure function of its seed, regardless of how output is
    /// chunked out of it.
    #[test]
    fn drbg_chunking_invariance(seed in any::<u64>(), sizes in proptest::collection::vec(1usize..64, 1..10)) {
        let total: usize = sizes.iter().sum();
        let mut a = HashDrbg::from_u64(seed);
        let expected = a.bytes(total);
        let mut b = HashDrbg::from_u64(seed);
        let mut got = Vec::new();
        for s in sizes {
            got.extend(b.bytes(s));
        }
        prop_assert_eq!(got, expected);
    }

    /// Every available AES backend (plus the byte-oriented reference) gives
    /// byte-identical ECB output in both directions, for both key sizes, on
    /// random keys and multi-block buffers — so runtime backend selection can
    /// never change what lands on disk.
    #[test]
    fn aes_backends_are_byte_identical(
        key in any::<[u8; 32]>(),
        blocks in 1usize..20,
        seed in any::<u8>(),
    ) {
        let data: Vec<u8> = (0..blocks * 16).map(|i| seed.wrapping_add(i as u8)).collect();
        let reference = stegfs_crypto::reference::Aes256::new(&key);
        let mut expected = data.clone();
        for block in expected.chunks_exact_mut(16) {
            reference.encrypt_block(block.try_into().unwrap());
        }
        for b in aes_backends() {
            let cipher = Aes256::with_backend(&key, b).unwrap();
            let mut got = data.clone();
            cipher.encrypt_blocks(&mut got);
            prop_assert_eq!(&got, &expected, "encrypt on {}", b.name());
            cipher.decrypt_blocks(&mut got);
            prop_assert_eq!(&got, &data, "decrypt on {}", b.name());
        }

        let key128: [u8; 16] = key[..16].try_into().unwrap();
        let ref128 = stegfs_crypto::reference::Aes128::new(&key128);
        let mut expected = data.clone();
        for block in expected.chunks_exact_mut(16) {
            ref128.encrypt_block(block.try_into().unwrap());
        }
        for b in aes_backends() {
            let cipher = Aes128::with_backend(&key128, b).unwrap();
            let mut got = data.clone();
            cipher.encrypt_blocks(&mut got);
            prop_assert_eq!(&got, &expected, "encrypt (128) on {}", b.name());
            cipher.decrypt_blocks(&mut got);
            prop_assert_eq!(&got, &data, "decrypt (128) on {}", b.name());
        }
    }

    /// CBC ciphertexts are byte-identical across backends for random keys,
    /// IVs and payload sizes (including sizes exercising the 8-wide decrypt
    /// path and its remainder), and every backend decrypts every other
    /// backend's ciphertext.
    #[test]
    fn cbc_backends_are_byte_identical(
        key in any::<[u8; 32]>(),
        iv in any::<[u8; 16]>(),
        blocks in 1usize..24,
        seed in any::<u8>(),
    ) {
        let data: Vec<u8> = (0..blocks * 16).map(|i| seed.wrapping_mul(i as u8)).collect();
        let backends = aes_backends();
        let ciphertexts: Vec<Vec<u8>> = backends
            .iter()
            .map(|&b| {
                CbcCipher::new(Aes256::with_backend(&key, b).unwrap())
                    .encrypt(&iv, &data)
                    .unwrap()
            })
            .collect();
        for (ct, b) in ciphertexts.iter().zip(&backends) {
            prop_assert_eq!(ct, &ciphertexts[0], "encrypt diverged on {}", b.name());
        }
        for &b in &backends {
            let cbc = CbcCipher::new(Aes256::with_backend(&key, b).unwrap());
            prop_assert_eq!(
                cbc.decrypt(&iv, &ciphertexts[0]).unwrap(),
                data.clone(),
                "decrypt diverged on {}",
                b.name()
            );
        }
    }

    /// SHA-256 digests and HMAC MACs (including the truncated derive_u64
    /// fast path) are byte-identical across every available compression
    /// backend for random messages and keys.
    #[test]
    fn sha_and_hmac_backends_are_byte_identical(
        key in proptest::collection::vec(any::<u8>(), 1..80),
        msg in proptest::collection::vec(any::<u8>(), 0..300),
    ) {
        let backends = sha_backends();
        let digests: Vec<_> = backends
            .iter()
            .map(|&b| {
                let mut h = Sha256::with_backend(b);
                h.update(&msg);
                h.finalize()
            })
            .collect();
        for (d, b) in digests.iter().zip(&backends) {
            prop_assert_eq!(d, &digests[0], "sha256 diverged on {}", b.name());
        }

        for &b in &backends {
            stegfs_crypto::backend::force_sha256(b);
            let mac = HmacSha256::mac(&key, &msg);
            let derived = HmacSha256::new(&key).derive_u64_with(&msg);
            stegfs_crypto::backend::force_auto();
            let expected = u64::from_be_bytes(mac[..8].try_into().unwrap());
            prop_assert_eq!(derived, expected, "derive_u64 diverged on {}", b.name());
            let reference_mac = {
                stegfs_crypto::backend::force_sha256(Sha256Backend::Scalar);
                let m = HmacSha256::mac(&key, &msg);
                stegfs_crypto::backend::force_auto();
                m
            };
            prop_assert_eq!(mac, reference_mac, "hmac diverged on {}", b.name());
        }
    }

    /// Derived sub-keys never equal their parent or each other for distinct
    /// labels.
    #[test]
    fn key_derivation_separation(pass in "[ -~]{1,32}", a in "[a-z]{1,8}", b in "[a-z]{1,8}") {
        let master = Key256::from_passphrase(&pass);
        let ka = master.derive(&a);
        let kb = master.derive(&b);
        prop_assert_ne!(ka, master);
        if a != b {
            prop_assert_ne!(ka, kb);
        } else {
            prop_assert_eq!(ka, kb);
        }
    }
}
