//! Cross-backend equivalence: every compiled-in AES and SHA-256 backend must
//! produce byte-identical output on the standard vectors (FIPS-197,
//! SP 800-38A, RFC 4231) and on structured bulk data. The randomized
//! counterpart lives in `tests/proptests.rs`; this suite pins the named
//! vectors per backend so a single failing backend is identified by name.

use stegfs_crypto::{
    backend_name, sha256_backend_name, Aes128, Aes256, Backend, BlockCipher, CbcCipher,
    CryptoError, HmacSha256, Sha256, Sha256Backend,
};

fn hex_to_bytes(s: &str) -> Vec<u8> {
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
        .collect()
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn aes_backends() -> Vec<Backend> {
    [Backend::Portable, Backend::AesNi]
        .into_iter()
        .filter(|b| b.is_available())
        .collect()
}

fn sha_backends() -> Vec<Sha256Backend> {
    [
        Sha256Backend::Scalar,
        Sha256Backend::Ssse3,
        Sha256Backend::ShaNi,
    ]
    .into_iter()
    .filter(|b| b.is_available())
    .collect()
}

#[test]
fn fips197_kats_on_every_backend() {
    let key128: [u8; 16] = hex_to_bytes("000102030405060708090a0b0c0d0e0f")
        .try_into()
        .unwrap();
    let key256: Vec<u8> =
        hex_to_bytes("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
    let plaintext: [u8; 16] = hex_to_bytes("00112233445566778899aabbccddeeff")
        .try_into()
        .unwrap();
    for b in aes_backends() {
        // FIPS-197 Appendix C.1 (AES-128).
        let cipher = Aes128::with_backend(&key128, b).unwrap();
        let mut block = plaintext;
        cipher.encrypt_block(&mut block);
        assert_eq!(
            hex(&block),
            "69c4e0d86a7b0430d8cdb78070b4c55a",
            "C.1 encrypt on {}",
            b.name()
        );
        cipher.decrypt_block(&mut block);
        assert_eq!(block, plaintext, "C.1 decrypt on {}", b.name());

        // FIPS-197 Appendix C.3 (AES-256).
        let cipher = Aes256::with_backend(&key256, b).unwrap();
        let mut block = plaintext;
        cipher.encrypt_block(&mut block);
        assert_eq!(
            hex(&block),
            "8ea2b7ca516745bfeafc49904b496089",
            "C.3 encrypt on {}",
            b.name()
        );
        cipher.decrypt_block(&mut block);
        assert_eq!(block, plaintext, "C.3 decrypt on {}", b.name());
    }
}

#[test]
fn sp800_38a_cbc_aes256_on_every_backend() {
    // NIST SP 800-38A F.2.5 / F.2.6, all four blocks.
    let key: Vec<u8> =
        hex_to_bytes("603deb1015ca71be2b73aef0857d77811f352c073b6108d72d9810a30914dff4");
    let iv: [u8; 16] = hex_to_bytes("000102030405060708090a0b0c0d0e0f")
        .try_into()
        .unwrap();
    let plaintext = hex_to_bytes(
        "6bc1bee22e409f96e93d7e117393172a\
         ae2d8a571e03ac9c9eb76fac45af8e51\
         30c81c46a35ce411e5fbc1191a0a52ef\
         f69f2445df4f9b17ad2b417be66c3710",
    );
    let expected = hex_to_bytes(
        "f58c4c04d6e5f1ba779eabfb5f7bfbd6\
         9cfc4e967edb808d679f777bc6702c7d\
         39f23369a9d9bacfa530e26304231461\
         b2eb05e2c39be9fcda6c19078c6a9d1b",
    );
    for b in aes_backends() {
        let cbc = CbcCipher::new(Aes256::with_backend(&key, b).unwrap());
        let ciphertext = cbc.encrypt(&iv, &plaintext).unwrap();
        assert_eq!(ciphertext, expected, "F.2.5 on {}", b.name());
        let decrypted = cbc.decrypt(&iv, &ciphertext).unwrap();
        assert_eq!(decrypted, plaintext, "F.2.6 on {}", b.name());
    }
}

#[test]
fn backends_agree_on_bulk_cbc_payloads() {
    // A full 4080-byte data field (the codec's CBC payload) plus odd sizes
    // that exercise the 8-wide decrypt path and its remainder handling.
    let backends = aes_backends();
    let key = [0x5Au8; 32];
    let iv = [0x99u8; 16];
    for len in [16usize, 112, 128, 144, 4080] {
        let plaintext: Vec<u8> = (0..len).map(|i| (i * 131 % 256) as u8).collect();
        let outputs: Vec<Vec<u8>> = backends
            .iter()
            .map(|&b| {
                let cbc = CbcCipher::new(Aes256::with_backend(&key, b).unwrap());
                let ct = cbc.encrypt(&iv, &plaintext).unwrap();
                let rt = cbc.decrypt(&iv, &ct).unwrap();
                assert_eq!(rt, plaintext, "roundtrip on {} at {len}", b.name());
                ct
            })
            .collect();
        for (ct, b) in outputs.iter().zip(&backends) {
            assert_eq!(ct, &outputs[0], "{} diverged at {len} bytes", b.name());
        }
    }
}

#[test]
fn rfc4231_vectors_on_every_sha_backend() {
    // RFC 4231 test cases 1, 2 and 6 (short key, short message; long key).
    let cases: [(&[u8], &[u8], &str); 3] = [
        (
            &[0x0bu8; 20],
            b"Hi There",
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7",
        ),
        (
            b"Jefe",
            b"what do ya want for nothing?",
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843",
        ),
        (
            &[0xaau8; 131],
            b"Test Using Larger Than Block-Size Key - Hash Key First",
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54",
        ),
    ];
    for b in sha_backends() {
        stegfs_crypto::backend::force_sha256(b);
        for (key, msg, expected) in cases {
            assert_eq!(
                hex(&HmacSha256::mac(key, msg)),
                expected,
                "RFC 4231 on {}",
                b.name()
            );
            // The derive_u64 fast path must agree with the full MAC.
            let mac = HmacSha256::mac(key, msg);
            let expected_u64 = u64::from_be_bytes(mac[..8].try_into().unwrap());
            assert_eq!(
                HmacSha256::new(key).derive_u64_with(msg),
                expected_u64,
                "derive_u64 fast path on {}",
                b.name()
            );
        }
    }
    stegfs_crypto::backend::force_auto();
}

#[test]
fn sha_backends_agree_on_structured_data() {
    let backends = sha_backends();
    let data: Vec<u8> = (0..8192u32)
        .map(|i| (i.wrapping_mul(2654435761) >> 24) as u8)
        .collect();
    for len in [0usize, 1, 55, 56, 64, 65, 127, 128, 1000, 8192] {
        let digests: Vec<_> = backends
            .iter()
            .map(|&b| {
                let mut h = Sha256::with_backend(b);
                h.update(&data[..len]);
                h.finalize()
            })
            .collect();
        for (d, b) in digests.iter().zip(&backends) {
            assert_eq!(d, &digests[0], "{} diverged at {len} bytes", b.name());
        }
    }
}

#[test]
fn unavailable_backend_is_a_typed_error() {
    // Either AES-NI is available (constructing works) or requesting it is the
    // typed BackendUnavailable error — never a silent fallback.
    match Aes256::with_backend(&[0u8; 32], Backend::AesNi) {
        Ok(cipher) => {
            assert!(Backend::AesNi.is_available());
            assert_eq!(cipher.backend(), Backend::AesNi);
        }
        Err(CryptoError::BackendUnavailable { backend }) => {
            assert!(!Backend::AesNi.is_available());
            assert_eq!(backend, "aesni");
        }
        Err(other) => panic!("unexpected error: {other}"),
    }
}

#[test]
fn backend_names_report_active_selection() {
    let aes = backend_name();
    assert!(aes == "portable" || aes == "aesni", "unexpected name {aes}");
    let sha = sha256_backend_name();
    assert!(
        sha == "scalar" || sha == "ssse3" || sha == "sha-ni",
        "unexpected name {sha}"
    );
    // The names must be consistent with what detection allows.
    if aes == "aesni" {
        assert!(Backend::AesNi.is_available());
    }
}
