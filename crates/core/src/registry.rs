//! The agent's in-memory registry of open files and block ownership.
//!
//! The registry is the agent's working memory (Section 3.2.3): which hidden
//! and dummy files it currently knows about, which physical block belongs to
//! which file and in what role, and the set of blocks it is allowed to touch.
//! For the volatile agent this is exactly the knowledge that evaporates on
//! restart; for the non-volatile agent it can be reconstructed from its
//! persistent block map and key.

use std::collections::HashMap;

use stegfs_base::OpenFile;
use stegfs_blockdev::BlockId;
use stegfs_crypto::HashDrbg;

/// Identifier of a registered (open) file within an agent.
pub type FileId = u64;

/// The role a physical block plays within its owning file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockRole {
    /// The file's header block.
    Header,
    /// The `n`-th indirect pointer block.
    Indirect(usize),
    /// The `n`-th content block.
    Content(u64),
}

/// Registry of open files, with a reverse index from physical block to
/// `(file, role)` and a flat universe of known blocks for uniform sampling.
#[derive(Debug, Default)]
pub struct Registry {
    files: HashMap<FileId, OpenFile>,
    next_id: FileId,
    owners: HashMap<BlockId, (FileId, BlockRole)>,
    universe: Vec<BlockId>,
    positions: HashMap<BlockId, usize>,
}

impl Registry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of registered files.
    pub fn num_files(&self) -> usize {
        self.files.len()
    }

    /// Number of known blocks (the agent's visible universe).
    pub fn universe_len(&self) -> usize {
        self.universe.len()
    }

    /// Register an open file and index all of its blocks. Returns its id.
    pub fn register(&mut self, file: OpenFile) -> FileId {
        let id = self.next_id;
        self.next_id += 1;
        self.index_blocks(id, &file);
        self.files.insert(id, file);
        id
    }

    fn index_blocks(&mut self, id: FileId, file: &OpenFile) {
        self.add_block(file.header_location, id, BlockRole::Header);
        for (i, &b) in file.indirect_locations.iter().enumerate() {
            self.add_block(b, id, BlockRole::Indirect(i));
        }
        for (i, &b) in file.header.blocks.iter().enumerate() {
            self.add_block(b, id, BlockRole::Content(i as u64));
        }
    }

    fn add_block(&mut self, block: BlockId, id: FileId, role: BlockRole) {
        self.owners.insert(block, (id, role));
        if !self.positions.contains_key(&block) {
            self.positions.insert(block, self.universe.len());
            self.universe.push(block);
        }
    }

    fn remove_block(&mut self, block: BlockId) {
        self.owners.remove(&block);
        if let Some(pos) = self.positions.remove(&block) {
            let last = self.universe.len() - 1;
            self.universe.swap(pos, last);
            self.universe.pop();
            if pos < self.universe.len() {
                let moved = self.universe[pos];
                self.positions.insert(moved, pos);
            }
        }
    }

    /// Unregister a file, forgetting all of its blocks. Returns the open file
    /// (e.g. so the caller can save its header first).
    pub fn unregister(&mut self, id: FileId) -> Option<OpenFile> {
        let file = self.files.remove(&id)?;
        for b in file.all_blocks() {
            self.remove_block(b);
        }
        Some(file)
    }

    /// Borrow a registered file.
    pub fn get(&self, id: FileId) -> Option<&OpenFile> {
        self.files.get(&id)
    }

    /// Mutably borrow a registered file.
    pub fn get_mut(&mut self, id: FileId) -> Option<&mut OpenFile> {
        self.files.get_mut(&id)
    }

    /// Ids of all registered files.
    pub fn file_ids(&self) -> Vec<FileId> {
        let mut ids: Vec<_> = self.files.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Who owns `block`, if anyone the agent knows about.
    pub fn owner_of(&self, block: BlockId) -> Option<(FileId, BlockRole)> {
        self.owners.get(&block).copied()
    }

    /// Uniformly sample a block from the agent's visible universe.
    pub fn random_known_block(&self, rng: &mut HashDrbg) -> Option<BlockId> {
        if self.universe.is_empty() {
            None
        } else {
            let idx = rng.gen_range(self.universe.len() as u64) as usize;
            Some(self.universe[idx])
        }
    }

    /// Record that content block `index` of file `id` moved from `old` to
    /// `new` (a Figure 6 relocation). Updates both the reverse index and the
    /// cached header; the header becomes dirty.
    pub fn relocate_content_block(
        &mut self,
        id: FileId,
        index: u64,
        old: BlockId,
        new: BlockId,
    ) -> bool {
        let Some(file) = self.files.get_mut(&id) else {
            return false;
        };
        let Some(slot) = file.header.blocks.get_mut(index as usize) else {
            return false;
        };
        debug_assert_eq!(*slot, old);
        *slot = new;
        file.dirty = true;
        self.remove_block(old);
        self.add_block(new, id, BlockRole::Content(index));
        true
    }

    /// Swap ownership between a content block of a data file and a content
    /// block of a dummy file: the data file's block `index` moves to
    /// `dummy_block`, and the vacated `data_block` joins the dummy file in
    /// place of `dummy_block`. Used by the volatile agent, where every block
    /// must stay accounted to some disclosed file.
    pub fn swap_with_dummy(
        &mut self,
        data_file: FileId,
        data_index: u64,
        data_block: BlockId,
        dummy_file: FileId,
        dummy_index: u64,
        dummy_block: BlockId,
    ) -> bool {
        {
            let Some(df) = self.files.get_mut(&data_file) else {
                return false;
            };
            let Some(slot) = df.header.blocks.get_mut(data_index as usize) else {
                return false;
            };
            debug_assert_eq!(*slot, data_block);
            *slot = dummy_block;
            df.dirty = true;
        }
        {
            let Some(xf) = self.files.get_mut(&dummy_file) else {
                return false;
            };
            let Some(slot) = xf.header.blocks.get_mut(dummy_index as usize) else {
                return false;
            };
            debug_assert_eq!(*slot, dummy_block);
            *slot = data_block;
            xf.dirty = true;
        }
        self.owners
            .insert(dummy_block, (data_file, BlockRole::Content(data_index)));
        self.owners
            .insert(data_block, (dummy_file, BlockRole::Content(dummy_index)));
        true
    }

    /// Iterate over ids of registered files that are dummies.
    pub fn dummy_file_ids(&self) -> Vec<FileId> {
        let mut ids: Vec<_> = self
            .files
            .iter()
            .filter(|(_, f)| f.is_dummy())
            .map(|(&id, _)| id)
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Ids of registered files whose cached header is dirty.
    pub fn dirty_file_ids(&self) -> Vec<FileId> {
        let mut ids: Vec<_> = self
            .files
            .iter()
            .filter(|(_, f)| f.dirty)
            .map(|(&id, _)| id)
            .collect();
        ids.sort_unstable();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stegfs_base::{FileAccessKey, FileHeader, FileKind};

    fn open_file(path: &str, header_loc: u64, blocks: Vec<u64>, dummy: bool) -> OpenFile {
        let kind = if dummy {
            FileKind::Dummy
        } else {
            FileKind::Data
        };
        OpenFile {
            path: path.to_string(),
            fak: FileAccessKey::from_passphrase(path),
            header_location: header_loc,
            indirect_locations: vec![],
            header: FileHeader::new(kind, blocks.len() as u64 * 4080, [0u8; 16], blocks),
            dirty: false,
        }
    }

    #[test]
    fn register_and_lookup() {
        let mut reg = Registry::new();
        let id = reg.register(open_file("/a", 10, vec![20, 21, 22], false));
        assert_eq!(reg.num_files(), 1);
        assert_eq!(reg.universe_len(), 4);
        assert_eq!(reg.owner_of(10), Some((id, BlockRole::Header)));
        assert_eq!(reg.owner_of(21), Some((id, BlockRole::Content(1))));
        assert_eq!(reg.owner_of(99), None);
    }

    #[test]
    fn unregister_forgets_blocks() {
        let mut reg = Registry::new();
        let id_a = reg.register(open_file("/a", 10, vec![20], false));
        let id_b = reg.register(open_file("/b", 30, vec![40, 41], false));
        assert_eq!(reg.universe_len(), 5);
        reg.unregister(id_a).unwrap();
        assert_eq!(reg.universe_len(), 3);
        assert_eq!(reg.owner_of(10), None);
        assert!(reg.owner_of(40).is_some());
        assert_eq!(reg.file_ids(), vec![id_b]);
        assert!(reg.unregister(id_a).is_none());
    }

    #[test]
    fn relocate_updates_header_and_index() {
        let mut reg = Registry::new();
        let id = reg.register(open_file("/a", 10, vec![20, 21], false));
        assert!(reg.relocate_content_block(id, 1, 21, 77));
        assert_eq!(reg.get(id).unwrap().header.blocks, vec![20, 77]);
        assert!(reg.get(id).unwrap().dirty);
        assert_eq!(reg.owner_of(77), Some((id, BlockRole::Content(1))));
        assert_eq!(reg.owner_of(21), None);
        assert_eq!(reg.universe_len(), 3);
        assert_eq!(reg.dirty_file_ids(), vec![id]);
    }

    #[test]
    fn swap_with_dummy_keeps_universe_constant() {
        let mut reg = Registry::new();
        let data = reg.register(open_file("/data", 10, vec![20, 21], false));
        let dummy = reg.register(open_file("/dummy", 30, vec![40, 41, 42], true));
        let before = reg.universe_len();
        assert!(reg.swap_with_dummy(data, 0, 20, dummy, 2, 42));
        assert_eq!(reg.universe_len(), before);
        assert_eq!(reg.get(data).unwrap().header.blocks, vec![42, 21]);
        assert_eq!(reg.get(dummy).unwrap().header.blocks, vec![40, 41, 20]);
        assert_eq!(reg.owner_of(42), Some((data, BlockRole::Content(0))));
        assert_eq!(reg.owner_of(20), Some((dummy, BlockRole::Content(2))));
        assert_eq!(reg.dummy_file_ids(), vec![dummy]);
    }

    #[test]
    fn random_known_block_samples_universe() {
        let mut reg = Registry::new();
        let mut rng = HashDrbg::from_u64(1);
        assert!(reg.random_known_block(&mut rng).is_none());
        reg.register(open_file("/a", 10, vec![20, 21, 22], false));
        for _ in 0..100 {
            let b = reg.random_known_block(&mut rng).unwrap();
            assert!([10, 20, 21, 22].contains(&b));
        }
    }

    #[test]
    fn bad_relocation_indices_are_rejected() {
        let mut reg = Registry::new();
        let id = reg.register(open_file("/a", 10, vec![20], false));
        assert!(!reg.relocate_content_block(id, 5, 20, 30));
        assert!(!reg.relocate_content_block(id + 1, 0, 20, 30));
    }
}
