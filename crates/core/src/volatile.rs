//! Construction 2: the volatile agent (the paper's **StegHide**).
//!
//! Section 4.2: the agent keeps *no* persistent secrets. Each hidden file is
//! encrypted under its own keys, dummy blocks are organised into per-user
//! dummy files "of approximately the size of data files", and both kinds of
//! FAK are disclosed to the agent only when the user logs on. When the agent
//! starts it has zero knowledge of the volume; its view — and therefore the
//! region of storage it dummy-updates — grows as users log in, and is
//! forgotten again at logout or restart.
//!
//! This module's agent is single-threaded (`&mut self` throughout); the
//! multi-user server variant with the decomposed locking scheme lives in
//! [`ConcurrentVolatileAgent`](crate::volatile_concurrent::ConcurrentVolatileAgent),
//! which serves the same provisioned volumes.

use std::collections::HashMap;

use stegfs_base::{BlockClass, BlockMap, FileAccessKey, StegFs, StegFsConfig};
use stegfs_blockdev::BlockDevice;

use crate::config::AgentConfig;
use crate::error::AgentError;
use crate::registry::FileId;
use crate::stats::UpdateStats;
use crate::update::{AgentCore, UpdateOutcome};

/// Identifier of a login session.
pub type SessionId = u64;

/// One (path, FAK) pair a user discloses when logging on. Users disclose
/// their hidden files *and* their dummy files — the agent cannot tell which
/// is which until it opens the header, and the distinction never leaves the
/// agent's volatile memory.
#[derive(Debug, Clone)]
pub struct UserCredential {
    /// Path of the file.
    pub path: String,
    /// File access key.
    pub fak: FileAccessKey,
}

impl UserCredential {
    /// Convenience constructor.
    pub fn new(path: impl Into<String>, fak: FileAccessKey) -> Self {
        Self {
            path: path.into(),
            fak,
        }
    }
}

struct Session {
    user: String,
    files: Vec<FileId>,
}

/// The volatile agent (StegHide).
pub struct VolatileAgent<D> {
    core: AgentCore<D>,
    sessions: HashMap<SessionId, Session>,
    next_session: SessionId,
}

impl<D: BlockDevice> VolatileAgent<D> {
    /// Format `device` as a fresh volume. The returned agent's block map
    /// reflects the freshly formatted (all-dummy) volume, which makes it
    /// suitable for the provisioning phase: creating users' initial hidden
    /// and dummy files before the system goes live. A production agent would
    /// then restart (see [`VolatileAgent::into_device`] +
    /// [`VolatileAgent::mount`]) and run with zero knowledge.
    pub fn format(
        device: D,
        fs_cfg: StegFsConfig,
        agent_cfg: AgentConfig,
        seed: u64,
    ) -> Result<Self, AgentError> {
        let (fs, map) = StegFs::format(device, fs_cfg, seed)?;
        Ok(Self {
            core: AgentCore::new(fs, map, agent_cfg, seed ^ 0x9e3779b9, None),
            sessions: HashMap::new(),
            next_session: 1,
        })
    }

    /// Attach to an existing volume with zero knowledge: every payload block
    /// starts out [`BlockClass::Unknown`] and the agent will only ever touch
    /// blocks of files that logged-in users disclose.
    pub fn mount(device: D, agent_cfg: AgentConfig, seed: u64) -> Result<Self, AgentError> {
        let fs = StegFs::mount(device)?;
        let map = BlockMap::new_unknown(fs.superblock().num_blocks);
        Ok(Self {
            core: AgentCore::new(fs, map, agent_cfg, seed ^ 0x9e3779b9, None),
            sessions: HashMap::new(),
            next_session: 1,
        })
    }

    /// Provision a hidden file during the set-up phase (requires a map with
    /// known dummy blocks, i.e. an agent obtained from
    /// [`VolatileAgent::format`] or with users logged in whose dummy files
    /// can donate blocks).
    pub fn provision_file(
        &mut self,
        path: &str,
        fak: &FileAccessKey,
        content: &[u8],
    ) -> Result<(), AgentError> {
        self.core
            .fs
            .create_file(&mut self.core.map, path, fak, content)?;
        Ok(())
    }

    /// Provision a hidden file of `size` bytes without writing its content
    /// blocks (benchmark set-up helper).
    pub fn provision_file_sparse(
        &mut self,
        path: &str,
        fak: &FileAccessKey,
        size: u64,
    ) -> Result<(), AgentError> {
        self.core
            .fs
            .create_file_sparse(&mut self.core.map, path, fak, size)?;
        Ok(())
    }

    /// Provision a dummy file of `num_blocks` blocks during the set-up phase.
    pub fn provision_dummy_file(
        &mut self,
        path: &str,
        fak: &FileAccessKey,
        num_blocks: u64,
    ) -> Result<(), AgentError> {
        self.core
            .fs
            .create_dummy_file(&mut self.core.map, path, fak, num_blocks)?;
        Ok(())
    }

    /// Provision a dummy file without re-randomising its content blocks (they
    /// already hold random bytes on a formatted volume); benchmark set-up
    /// helper.
    pub fn provision_dummy_file_sparse(
        &mut self,
        path: &str,
        fak: &FileAccessKey,
        num_blocks: u64,
    ) -> Result<(), AgentError> {
        self.core
            .fs
            .create_dummy_file_sparse(&mut self.core.map, path, fak, num_blocks)?;
        Ok(())
    }

    /// Log a user on: open every disclosed file and add its blocks to the
    /// agent's view. Returns the session id.
    pub fn login(
        &mut self,
        user: &str,
        credentials: &[UserCredential],
    ) -> Result<SessionId, AgentError> {
        let mut files = Vec::with_capacity(credentials.len());
        for cred in credentials {
            let file = self.core.fs.open_file(&cred.fak, &cred.path)?;
            self.core.fs.register_file(&mut self.core.map, &file);
            files.push(self.core.registry.register(file));
        }
        let session = self.next_session;
        self.next_session += 1;
        self.sessions.insert(
            session,
            Session {
                user: user.to_string(),
                files,
            },
        );
        Ok(session)
    }

    /// Log a user off: persist any dirty headers, then forget the files, keys
    /// and block classifications contributed by the session.
    pub fn logout(&mut self, session: SessionId) -> Result<(), AgentError> {
        let state = self
            .sessions
            .remove(&session)
            .ok_or(AgentError::UnknownSession(session))?;
        for id in state.files {
            self.core.save_file(id)?;
            if let Some(file) = self.core.registry.unregister(id) {
                for b in file.all_blocks() {
                    self.core.map.set(b, BlockClass::Unknown);
                }
            }
        }
        Ok(())
    }

    /// Users currently logged in.
    pub fn logged_in_users(&self) -> Vec<String> {
        let mut users: Vec<String> = self.sessions.values().map(|s| s.user.clone()).collect();
        users.sort();
        users
    }

    /// File ids registered by a session, in the order the credentials were
    /// supplied at login.
    pub fn session_files(&self, session: SessionId) -> Result<Vec<FileId>, AgentError> {
        Ok(self
            .sessions
            .get(&session)
            .ok_or(AgentError::UnknownSession(session))?
            .files
            .clone())
    }

    fn check_ownership(&self, session: SessionId, id: FileId) -> Result<(), AgentError> {
        let s = self
            .sessions
            .get(&session)
            .ok_or(AgentError::UnknownSession(session))?;
        if s.files.contains(&id) {
            Ok(())
        } else {
            Err(AgentError::UnknownFile(id))
        }
    }

    /// Create a new hidden file for a logged-in user by converting blocks of
    /// the user's own dummy files into data blocks. This is how new data
    /// enters the system at runtime without the agent needing any global
    /// free-space knowledge.
    pub fn create_file_from_dummies(
        &mut self,
        session: SessionId,
        path: &str,
        fak: &FileAccessKey,
        content: &[u8],
    ) -> Result<FileId, AgentError> {
        self.sessions
            .get(&session)
            .ok_or(AgentError::UnknownSession(session))?;
        let file = self
            .core
            .fs
            .create_file(&mut self.core.map, path, fak, content)?;
        self.core.fs.register_file(&mut self.core.map, &file);

        // Creating the file consumed blocks that the map classified as dummy;
        // under the volatile agent those blocks belong to disclosed dummy
        // files, whose headers must stop referencing them. Shrink each
        // affected dummy file accordingly.
        let consumed: Vec<u64> = file.all_blocks();
        for block in consumed {
            if let Some((owner, crate::registry::BlockRole::Content(_))) =
                self.core.registry.owner_of(block)
            {
                if self
                    .core
                    .registry
                    .get(owner)
                    .map(|f| f.is_dummy())
                    .unwrap_or(false)
                {
                    if let Some(dummy) = self.core.registry.get_mut(owner) {
                        dummy.header.blocks.retain(|&b| b != block);
                        let remaining = dummy.header.blocks.len() as u64;
                        dummy.header.file_size =
                            remaining * self.core.fs.content_bytes_per_block() as u64;
                        dummy.dirty = true;
                    }
                    // Rebuild the reverse index for the shrunk dummy file.
                    self.reindex_file(owner);
                }
            }
        }

        let id = self.core.registry.register(file);
        self.sessions
            .get_mut(&session)
            .expect("session checked above")
            .files
            .push(id);
        Ok(id)
    }

    fn reindex_file(&mut self, id: FileId) {
        if let Some(file) = self.core.registry.unregister(id) {
            let new_id = self.core.registry.register(file);
            // Keep session bookkeeping consistent with the new id.
            for s in self.sessions.values_mut() {
                for fid in s.files.iter_mut() {
                    if *fid == id {
                        *fid = new_id;
                    }
                }
            }
        }
    }

    /// Read a whole file.
    pub fn read_file(&self, session: SessionId, id: FileId) -> Result<Vec<u8>, AgentError> {
        self.check_ownership(session, id)?;
        self.core.read_file(id)
    }

    /// Read one content block.
    pub fn read_block(
        &self,
        session: SessionId,
        id: FileId,
        index: u64,
    ) -> Result<Vec<u8>, AgentError> {
        self.check_ownership(session, id)?;
        self.core.read_content_block(id, index)
    }

    /// Number of content blocks of an open file.
    pub fn num_blocks(&self, session: SessionId, id: FileId) -> Result<u64, AgentError> {
        self.check_ownership(session, id)?;
        Ok(self
            .core
            .registry
            .get(id)
            .ok_or(AgentError::UnknownFile(id))?
            .num_content_blocks())
    }

    /// Update one content block with the Figure 6 algorithm. Relocation
    /// targets are drawn from the dummy blocks disclosed by logged-in users.
    pub fn update_block(
        &mut self,
        session: SessionId,
        id: FileId,
        index: u64,
        payload: &[u8],
    ) -> Result<UpdateOutcome, AgentError> {
        self.check_ownership(session, id)?;
        self.core.update_content_block(id, index, payload)
    }

    /// Update `count` consecutive blocks with a fill byte (Figure 11(b)'s
    /// range-update workload).
    pub fn update_range_fill(
        &mut self,
        session: SessionId,
        id: FileId,
        start_index: u64,
        count: u64,
        fill: u8,
    ) -> Result<Vec<UpdateOutcome>, AgentError> {
        self.check_ownership(session, id)?;
        let payload = vec![fill; self.core.fs.content_bytes_per_block()];
        let mut out = Vec::with_capacity(count as usize);
        for i in start_index..start_index + count {
            out.push(self.core.update_content_block(id, i, &payload)?);
        }
        Ok(out)
    }

    /// Save the cached header of one file.
    pub fn save_file(&mut self, session: SessionId, id: FileId) -> Result<(), AgentError> {
        self.check_ownership(session, id)?;
        self.core.save_file(id)
    }

    /// Save every dirty cached header.
    pub fn flush(&mut self) -> Result<(), AgentError> {
        self.core.flush_dirty_headers()
    }

    /// Perform the configured number of idle-time dummy updates over the
    /// blocks the agent currently knows about. With nobody logged in this
    /// returns [`AgentError::NothingToUpdate`] — there is literally nothing
    /// the agent can touch, which is the price of volatility the paper notes.
    pub fn tick_idle(&mut self) -> Result<Vec<u64>, AgentError> {
        let n = self.core.cfg.dummy_updates_per_tick;
        let mut touched = Vec::with_capacity(n as usize);
        for _ in 0..n {
            touched.push(self.core.dummy_update_once()?);
        }
        Ok(touched)
    }

    /// Issue exactly `n` dummy updates.
    pub fn dummy_updates(&mut self, n: u64) -> Result<(), AgentError> {
        for _ in 0..n {
            self.core.dummy_update_once()?;
        }
        Ok(())
    }

    /// Update statistics collected so far.
    pub fn stats(&self) -> UpdateStats {
        self.core.stats
    }

    /// Current space utilisation over the *known* region of the volume.
    pub fn utilisation(&self) -> f64 {
        self.core.map.utilisation()
    }

    /// The underlying file system.
    pub fn fs(&self) -> &StegFs<D> {
        &self.core.fs
    }

    /// The agent's (volatile) block map.
    pub fn block_map(&self) -> &BlockMap {
        &self.core.map
    }

    /// Consume the agent and return the underlying device — used to simulate
    /// an agent restart, after which [`VolatileAgent::mount`] reattaches with
    /// zero knowledge.
    pub fn into_device(self) -> D {
        self.core.fs.into_device()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stegfs_blockdev::MemDevice;

    /// Provision a volume with one user owning a data file and a dummy file,
    /// then restart the agent so it has zero knowledge.
    fn provisioned_agent() -> (
        VolatileAgent<MemDevice>,
        FileAccessKey,
        FileAccessKey,
        Vec<u8>,
    ) {
        let fs_cfg = StegFsConfig::default().with_block_size(512);
        let mut setup = VolatileAgent::format(
            MemDevice::new(1024, 512),
            fs_cfg,
            AgentConfig::default(),
            21,
        )
        .unwrap();
        let data_fak = FileAccessKey::from_passphrase("alice-data");
        let dummy_fak = FileAccessKey::from_passphrase("alice-dummy").without_content_key();
        let per = setup.fs().content_bytes_per_block();
        let content = (0..per * 6).map(|i| (i % 251) as u8).collect::<Vec<u8>>();
        setup
            .provision_file("/alice/data", &data_fak, &content)
            .unwrap();
        setup
            .provision_dummy_file("/alice/dummy", &dummy_fak, 8)
            .unwrap();

        let device = setup.into_device();
        let agent = VolatileAgent::mount(device, AgentConfig::default(), 77).unwrap();
        (agent, data_fak, dummy_fak, content)
    }

    fn alice_credentials(
        data_fak: &FileAccessKey,
        dummy_fak: &FileAccessKey,
    ) -> Vec<UserCredential> {
        vec![
            UserCredential::new("/alice/data", data_fak.clone()),
            UserCredential::new("/alice/dummy", dummy_fak.clone()),
        ]
    }

    #[test]
    fn fresh_agent_knows_nothing() {
        let (mut agent, _, _, _) = provisioned_agent();
        assert_eq!(agent.block_map().data_blocks(), 0);
        assert_eq!(agent.logged_in_users().len(), 0);
        // With nobody logged in there is nothing to dummy-update.
        assert!(matches!(
            agent.tick_idle(),
            Err(AgentError::NothingToUpdate)
        ));
    }

    #[test]
    fn login_discloses_files_and_enables_dummy_traffic() {
        let (mut agent, data_fak, dummy_fak, content) = provisioned_agent();
        let session = agent
            .login("alice", &alice_credentials(&data_fak, &dummy_fak))
            .unwrap();
        assert_eq!(agent.logged_in_users(), vec!["alice".to_string()]);
        let files = agent.session_files(session).unwrap();
        assert_eq!(files.len(), 2);
        assert_eq!(agent.read_file(session, files[0]).unwrap(), content);
        // Now dummy updates are possible and touch only known blocks.
        let touched = agent.tick_idle().unwrap();
        assert!(!touched.is_empty());
        // Content still intact afterwards.
        assert_eq!(agent.read_file(session, files[0]).unwrap(), content);
    }

    #[test]
    fn updates_relocate_into_the_users_dummy_blocks() {
        let (mut agent, data_fak, dummy_fak, _) = provisioned_agent();
        let session = agent
            .login("alice", &alice_credentials(&data_fak, &dummy_fak))
            .unwrap();
        let files = agent.session_files(session).unwrap();
        let data_id = files[0];
        let per = agent.fs().content_bytes_per_block();

        let mut relocations = 0;
        for i in 0..12u64 {
            let payload = vec![i as u8 + 1; per];
            match agent
                .update_block(session, data_id, i % 6, &payload)
                .unwrap()
            {
                UpdateOutcome::Relocated { .. } => relocations += 1,
                UpdateOutcome::InPlace { .. } => {}
            }
        }
        assert!(relocations > 0, "expected at least one relocation");
        // Dummy file keeps the same number of content blocks (swap semantics).
        let dummy_id = files[1];
        assert_eq!(agent.num_blocks(session, dummy_id).unwrap(), 8);
        assert_eq!(agent.stats().data_updates, 12);
    }

    #[test]
    fn state_survives_logout_and_new_session() {
        let (mut agent, data_fak, dummy_fak, _) = provisioned_agent();
        let per = agent.fs().content_bytes_per_block();
        let session = agent
            .login("alice", &alice_credentials(&data_fak, &dummy_fak))
            .unwrap();
        let files = agent.session_files(session).unwrap();
        let expected: Vec<u8> = vec![0xC3; per];
        agent.update_block(session, files[0], 2, &expected).unwrap();
        agent.logout(session).unwrap();
        assert_eq!(
            agent.block_map().data_blocks(),
            0,
            "view forgotten at logout"
        );

        let session2 = agent
            .login("alice", &alice_credentials(&data_fak, &dummy_fak))
            .unwrap();
        let files2 = agent.session_files(session2).unwrap();
        let read = agent.read_file(session2, files2[0]).unwrap();
        assert_eq!(&read[2 * per..3 * per], &expected[..]);
    }

    #[test]
    fn sessions_cannot_touch_each_others_files() {
        let (mut agent, data_fak, dummy_fak, _) = provisioned_agent();
        let alice = agent
            .login("alice", &alice_credentials(&data_fak, &dummy_fak))
            .unwrap();
        let alice_files = agent.session_files(alice).unwrap();
        let mallory = agent.login("mallory", &[]).unwrap();
        assert!(matches!(
            agent.read_file(mallory, alice_files[0]),
            Err(AgentError::UnknownFile(_))
        ));
        assert!(matches!(
            agent.update_block(mallory, alice_files[0], 0, b"x"),
            Err(AgentError::UnknownFile(_))
        ));
    }

    #[test]
    fn login_with_wrong_key_fails() {
        let (mut agent, _, dummy_fak, _) = provisioned_agent();
        let wrong = FileAccessKey::from_passphrase("not-alice");
        let creds = vec![
            UserCredential::new("/alice/data", wrong),
            UserCredential::new("/alice/dummy", dummy_fak),
        ];
        assert!(agent.login("alice", &creds).is_err());
    }

    #[test]
    fn create_file_from_dummies_converts_dummy_blocks() {
        let (mut agent, data_fak, dummy_fak, _) = provisioned_agent();
        let session = agent
            .login("alice", &alice_credentials(&data_fak, &dummy_fak))
            .unwrap();
        let per = agent.fs().content_bytes_per_block();
        let new_fak = FileAccessKey::from_passphrase("alice-notes");
        let content = vec![0x5Au8; per * 2];
        let id = agent
            .create_file_from_dummies(session, "/alice/notes", &new_fak, &content)
            .unwrap();
        assert_eq!(agent.read_file(session, id).unwrap(), content);
        // The user's dummy file shrank to donate the blocks.
        agent.flush().unwrap();
        agent.logout(session).unwrap();

        let session2 = agent
            .login(
                "alice",
                &[
                    UserCredential::new("/alice/dummy", dummy_fak.clone()),
                    UserCredential::new("/alice/notes", new_fak.clone()),
                ],
            )
            .unwrap();
        let files = agent.session_files(session2).unwrap();
        let dummy_blocks = agent.num_blocks(session2, files[0]).unwrap();
        assert!(
            dummy_blocks < 8,
            "dummy file should have shrunk, has {dummy_blocks}"
        );
        assert_eq!(agent.read_file(session2, files[1]).unwrap(), content);
    }

    #[test]
    fn logout_unknown_session_errors() {
        let (mut agent, _, _, _) = provisioned_agent();
        assert!(matches!(
            agent.logout(99),
            Err(AgentError::UnknownSession(99))
        ));
    }
}
