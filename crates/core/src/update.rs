//! The shared update machinery: dummy updates and the Figure 6 algorithm.
//!
//! Both agent constructions drive the same [`AgentCore`]; they differ only in
//! how blocks are keyed (one global key versus per-file keys) and in which
//! blocks are *visible* (the whole volume versus the blocks of files disclosed
//! by logged-in users). Those two choices are captured by
//! [`AgentCore::global_key`] and the candidate-selection strategy.

use stegfs_base::{BlockClass, BlockMap, FileKind, OpenFile, StegFs};
use stegfs_blockdev::BlockDevice;
use stegfs_crypto::{HashDrbg, Key256};

use crate::config::AgentConfig;
use crate::error::AgentError;
use crate::registry::{BlockRole, FileId, Registry};
use crate::stats::UpdateStats;

/// What a data update ended up doing, as reported to the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateOutcome {
    /// The randomly selected block was the block being updated, so the update
    /// happened in place (the `B2 = B1` branch of Figure 6).
    InPlace {
        /// The block that was rewritten.
        block: u64,
    },
    /// The block's content moved to a new physical location.
    Relocated {
        /// Previous physical block.
        from: u64,
        /// New physical block.
        to: u64,
    },
}

impl UpdateOutcome {
    /// The physical block now holding the logical content.
    pub fn current_block(&self) -> u64 {
        match *self {
            UpdateOutcome::InPlace { block } => block,
            UpdateOutcome::Relocated { to, .. } => to,
        }
    }
}

/// How a given block must be "dummy updated".
enum ResealAction {
    /// Decrypt under this key, refresh the IV, re-encrypt, write back.
    Key(Key256),
    /// The block only ever held random bytes: read it (to keep the I/O
    /// signature identical) and overwrite it with fresh random bytes.
    Random,
}

/// The agent's shared state and update logic.
pub(crate) struct AgentCore<D> {
    pub(crate) fs: StegFs<D>,
    pub(crate) map: BlockMap,
    pub(crate) registry: Registry,
    pub(crate) cfg: AgentConfig,
    pub(crate) stats: UpdateStats,
    pub(crate) rng: HashDrbg,
    /// `Some` for the non-volatile agent (Construction 1): every block on the
    /// volume is encrypted under this one key. `None` for the volatile agent
    /// (Construction 2): keys are per file and found through the registry.
    pub(crate) global_key: Option<Key256>,
    /// Reusable block-sized buffer for accounting reads, so the per-iteration
    /// Figure 6 loop does not allocate.
    scratch: Vec<u8>,
}

impl<D: BlockDevice> AgentCore<D> {
    pub(crate) fn new(
        fs: StegFs<D>,
        map: BlockMap,
        cfg: AgentConfig,
        rng_seed: u64,
        global_key: Option<Key256>,
    ) -> Self {
        Self {
            fs,
            map,
            registry: Registry::new(),
            cfg,
            stats: UpdateStats::default(),
            rng: HashDrbg::new(&rng_seed.to_be_bytes()),
            global_key,
            scratch: Vec::new(),
        }
    }

    /// Uniformly choose the next candidate block `B2`.
    ///
    /// * Non-volatile agent: any payload block of the volume (it holds the
    ///   key for all of them).
    /// * Volatile agent: any block of a disclosed file — the agent's visible
    ///   universe (Section 4.2.2).
    fn pick_candidate(&mut self) -> Option<u64> {
        if self.global_key.is_some() {
            Some(self.fs.random_payload_block())
        } else {
            self.registry.random_known_block(&mut self.rng)
        }
    }

    /// Determine how to dummy-update `block`.
    fn reseal_action(&self, block: u64) -> Option<ResealAction> {
        if let Some(key) = self.global_key {
            return Some(ResealAction::Key(key));
        }
        let (fid, role) = self.registry.owner_of(block)?;
        let file = self.registry.get(fid)?;
        match role {
            BlockRole::Header | BlockRole::Indirect(_) => {
                Some(ResealAction::Key(*file.fak.header_key()))
            }
            BlockRole::Content(_) => match (file.header.kind, file.fak.content_key()) {
                (FileKind::Data, Some(key)) => Some(ResealAction::Key(*key)),
                // Dummy-file content (or a data file whose content key was
                // withheld): the bytes are meaningless, rewrite them randomly.
                _ => Some(ResealAction::Random),
            },
        }
    }

    /// The key under which new content for `file` is sealed.
    fn content_key_for(&self, file: &OpenFile) -> Result<Key256, AgentError> {
        if let Some(key) = self.global_key {
            return Ok(key);
        }
        file.fak
            .content_key()
            .copied()
            .ok_or(AgentError::Fs(stegfs_base::FsError::NoContentKey))
    }

    /// Perform one dummy update on `block` (read, refresh IV, re-encrypt /
    /// re-randomise, write back) and account for its two I/Os.
    fn dummy_update_block(&mut self, block: u64) -> Result<(), AgentError> {
        match self.reseal_action(block) {
            Some(ResealAction::Key(key)) => {
                self.fs.reseal_block(block, &key)?;
            }
            Some(ResealAction::Random) | None => {
                // Read first so the request signature (read then write of the
                // same block) matches every other dummy update.
                let block_size = self.fs.codec().block_size();
                self.scratch.resize(block_size, 0);
                self.fs.device().read_block(block, &mut self.scratch)?;
                self.fs.randomize_block(block)?;
            }
        }
        self.stats.block_reads += 1;
        self.stats.block_writes += 1;
        self.stats.dummy_updates += 1;
        Ok(())
    }

    /// Issue one idle-time dummy update on a randomly selected block
    /// (Section 4.1.3). Returns the block touched.
    pub(crate) fn dummy_update_once(&mut self) -> Result<u64, AgentError> {
        let block = self.pick_candidate().ok_or(AgentError::NothingToUpdate)?;
        self.dummy_update_block(block)?;
        Ok(block)
    }

    /// Whether `block` may serve as the relocation target of a data update.
    ///
    /// * Non-volatile agent: any block the map classifies as dummy.
    /// * Volatile agent: a content block of a *disclosed dummy file* (the
    ///   user's own decoys), so that every block remains accounted to a file
    ///   whose header the agent can rewrite.
    fn swap_target(&self, block: u64) -> Option<SwapTarget> {
        if self.global_key.is_some() {
            if self.map.class(block) == BlockClass::Dummy {
                return Some(SwapTarget::Abandoned);
            }
            return None;
        }
        let (fid, role) = self.registry.owner_of(block)?;
        let file = self.registry.get(fid)?;
        match (file.header.kind, role) {
            (FileKind::Dummy, BlockRole::Content(idx)) => Some(SwapTarget::DummyFile {
                file: fid,
                index: idx,
            }),
            _ => None,
        }
    }

    /// The Figure 6 update algorithm: update content block `index` of file
    /// `id` to contain `payload`, relocating it to a uniformly random
    /// position.
    pub(crate) fn update_content_block(
        &mut self,
        id: FileId,
        index: u64,
        payload: &[u8],
    ) -> Result<UpdateOutcome, AgentError> {
        let max_payload = self.fs.content_bytes_per_block();
        if payload.len() > max_payload {
            return Err(AgentError::PayloadTooLarge {
                got: payload.len(),
                max: max_payload,
            });
        }
        let (b1, content_key) = {
            let file = self.registry.get(id).ok_or(AgentError::UnknownFile(id))?;
            let b1 = *file
                .header
                .blocks
                .get(index as usize)
                .ok_or(AgentError::Fs(stegfs_base::FsError::OutOfBounds {
                    index,
                    len: file.header.num_blocks(),
                }))?;
            (b1, self.content_key_for(file)?)
        };

        if !self.cfg.relocate_on_update {
            // Ablation mode: dummy-update stream only, data rewritten in
            // place. This is what the paper argues is insufficient.
            self.read_block_for_accounting(b1)?;
            self.write_sealed_content(b1, &content_key, payload)?;
            self.stats.data_updates += 1;
            self.stats.iterations += 1;
            self.stats.in_place += 1;
            return Ok(UpdateOutcome::InPlace { block: b1 });
        }

        for _attempt in 0..self.cfg.max_update_iterations {
            self.stats.iterations += 1;
            let b2 = self.pick_candidate().ok_or(AgentError::NoDummyBlocks)?;

            if b2 == b1 {
                // Figure 6, first branch: update in place.
                self.read_block_for_accounting(b1)?;
                self.write_sealed_content(b1, &content_key, payload)?;
                self.stats.data_updates += 1;
                self.stats.in_place += 1;
                return Ok(UpdateOutcome::InPlace { block: b1 });
            }

            if let Some(target) = self.swap_target(b2) {
                // Figure 6, second branch: substitute B2 for B1.
                self.read_block_for_accounting(b1)?;
                self.write_sealed_content(b2, &content_key, payload)?;

                match target {
                    SwapTarget::Abandoned => {
                        self.map.set(b2, BlockClass::Data);
                        self.map.set(b1, BlockClass::Dummy);
                        self.registry.relocate_content_block(id, index, b1, b2);
                    }
                    SwapTarget::DummyFile {
                        file: dummy_fid,
                        index: dummy_idx,
                    } => {
                        self.map.set(b2, BlockClass::Data);
                        self.map.set(b1, BlockClass::Dummy);
                        self.registry
                            .swap_with_dummy(id, index, b1, dummy_fid, dummy_idx, b2);
                    }
                }
                self.stats.data_updates += 1;
                self.stats.relocations += 1;
                return Ok(UpdateOutcome::Relocated { from: b1, to: b2 });
            }

            // Figure 6, third branch: B2 holds data — dummy-update it and try
            // again.
            self.dummy_update_block(b2)?;
        }

        Err(AgentError::UpdateRetriesExhausted {
            attempts: self.cfg.max_update_iterations,
        })
    }

    fn read_block_for_accounting(&mut self, block: u64) -> Result<(), AgentError> {
        let block_size = self.fs.codec().block_size();
        self.scratch.resize(block_size, 0);
        self.fs.device().read_block(block, &mut self.scratch)?;
        self.stats.block_reads += 1;
        Ok(())
    }

    fn write_sealed_content(
        &mut self,
        block: u64,
        key: &Key256,
        payload: &[u8],
    ) -> Result<(), AgentError> {
        self.fs.with_rng(|rng| {
            self.fs
                .codec()
                .write_sealed(self.fs.device(), block, key, payload, rng)
        })?;
        self.stats.block_writes += 1;
        Ok(())
    }

    /// Write back the cached headers of every dirty registered file.
    pub(crate) fn flush_dirty_headers(&mut self) -> Result<(), AgentError> {
        for id in self.registry.dirty_file_ids() {
            self.save_file(id)?;
        }
        Ok(())
    }

    /// Write back the cached header of one file.
    pub(crate) fn save_file(&mut self, id: FileId) -> Result<(), AgentError> {
        let fs = &self.fs;
        let file = self
            .registry
            .get_mut(id)
            .ok_or(AgentError::UnknownFile(id))?;
        fs.save(file)?;
        Ok(())
    }

    /// Read one content block of a registered file.
    pub(crate) fn read_content_block(&self, id: FileId, index: u64) -> Result<Vec<u8>, AgentError> {
        let file = self.registry.get(id).ok_or(AgentError::UnknownFile(id))?;
        Ok(self.fs.read_content_block(file, index)?)
    }

    /// Read a whole registered file.
    pub(crate) fn read_file(&self, id: FileId) -> Result<Vec<u8>, AgentError> {
        let file = self.registry.get(id).ok_or(AgentError::UnknownFile(id))?;
        Ok(self.fs.read_file(file)?)
    }
}

/// Classification of a viable relocation target.
enum SwapTarget {
    /// An abandoned block (non-volatile agent's view).
    Abandoned,
    /// Content block `index` of disclosed dummy file `file` (volatile agent).
    DummyFile { file: FileId, index: u64 },
}

#[cfg(test)]
mod tests {
    use super::*;
    use stegfs_base::{FileAccessKey, StegFsConfig};
    use stegfs_blockdev::MemDevice;

    /// Build a construction-1-style core (global key) over a small volume
    /// with one registered file.
    fn test_core(num_blocks: u64, cfg: AgentConfig) -> (AgentCore<MemDevice>, FileId, Vec<u8>) {
        let dev = MemDevice::new(num_blocks, 512);
        let (fs, map) =
            StegFs::format(dev, StegFsConfig::default().with_block_size(512), 11).unwrap();
        let global_key = Key256::from_passphrase("agent global key");
        let mut core = AgentCore::new(fs, map, cfg, 99, Some(global_key));

        let fak = FileAccessKey::from_parts(
            Key256::from_passphrase("user location secret"),
            global_key,
            Some(global_key),
        );
        let content = vec![0x42u8; 496 * 4];
        let file = core
            .fs
            .create_file(&mut core.map, "/t", &fak, &content)
            .unwrap();
        let id = core.registry.register(file);
        (core, id, content)
    }

    #[test]
    fn in_place_and_relocated_updates_preserve_readability() {
        let (mut core, id, content) = test_core(256, AgentConfig::default());
        let per = core.fs.content_bytes_per_block();
        let new_block = vec![0x99u8; per];
        let outcome = core.update_content_block(id, 2, &new_block).unwrap();
        // Whatever branch was taken, the file now reads back with the new
        // block in position 2.
        let read = core.read_file(id).unwrap();
        assert_eq!(&read[..per], &content[..per]);
        assert_eq!(&read[2 * per..3 * per], &new_block[..]);
        match outcome {
            UpdateOutcome::InPlace { block } => {
                assert_eq!(core.registry.get(id).unwrap().header.blocks[2], block);
            }
            UpdateOutcome::Relocated { from, to } => {
                assert_ne!(from, to);
                assert_eq!(core.registry.get(id).unwrap().header.blocks[2], to);
                assert_eq!(core.map.class(from), BlockClass::Dummy);
                assert_eq!(core.map.class(to), BlockClass::Data);
            }
        }
        assert_eq!(core.stats.data_updates, 1);
        assert!(core.stats.iterations >= 1);
    }

    #[test]
    fn relocation_is_overwhelmingly_likely_at_low_utilisation() {
        // With ~3 % utilisation, the probability of 50 consecutive in-place
        // outcomes is negligible; expect at least one relocation.
        let (mut core, id, _) = test_core(512, AgentConfig::default());
        let per = core.fs.content_bytes_per_block();
        let mut relocated = 0;
        for i in 0..50u64 {
            let payload = vec![i as u8; per];
            if matches!(
                core.update_content_block(id, i % 4, &payload).unwrap(),
                UpdateOutcome::Relocated { .. }
            ) {
                relocated += 1;
            }
        }
        assert!(relocated > 40, "relocated only {relocated} of 50");
        assert_eq!(core.stats.data_updates, 50);
        // After saving, the file still reads correctly from a fresh open.
        core.flush_dirty_headers().unwrap();
        let file = core.registry.get(id).unwrap().clone();
        let reopened = core.fs.open_file(&file.fak, "/t").unwrap();
        assert_eq!(reopened.header.blocks, file.header.blocks);
    }

    #[test]
    fn iterations_track_figure6_retries() {
        let (mut core, id, _) = test_core(256, AgentConfig::default());
        let per = core.fs.content_bytes_per_block();
        for i in 0..20u64 {
            core.update_content_block(id, 0, &vec![i as u8; per])
                .unwrap();
        }
        let s = core.stats;
        assert_eq!(s.data_updates, 20);
        assert!(s.iterations >= 20);
        // Every iteration costs exactly one read and one write.
        assert_eq!(s.block_reads, s.iterations);
        assert_eq!(s.block_writes, s.iterations);
        // Retries show up as dummy updates.
        assert_eq!(s.dummy_updates, s.iterations - s.data_updates);
    }

    #[test]
    fn ablation_mode_never_relocates() {
        let (mut core, id, _) = test_core(256, AgentConfig::default().without_relocation());
        let per = core.fs.content_bytes_per_block();
        let before = core.registry.get(id).unwrap().header.blocks.clone();
        for i in 0..10u64 {
            let outcome = core
                .update_content_block(id, 1, &vec![i as u8; per])
                .unwrap();
            assert!(matches!(outcome, UpdateOutcome::InPlace { .. }));
        }
        assert_eq!(core.registry.get(id).unwrap().header.blocks, before);
        assert_eq!(core.stats.relocations, 0);
    }

    #[test]
    fn dummy_updates_do_not_corrupt_data() {
        let (mut core, id, content) = test_core(256, AgentConfig::default());
        for _ in 0..200 {
            core.dummy_update_once().unwrap();
        }
        assert_eq!(core.read_file(id).unwrap(), content);
        assert_eq!(core.stats.dummy_updates, 200);
    }

    #[test]
    fn oversized_payload_rejected() {
        let (mut core, id, _) = test_core(256, AgentConfig::default());
        let per = core.fs.content_bytes_per_block();
        assert!(matches!(
            core.update_content_block(id, 0, &vec![0u8; per + 1]),
            Err(AgentError::PayloadTooLarge { .. })
        ));
    }

    #[test]
    fn unknown_file_and_index_errors() {
        let (mut core, id, _) = test_core(256, AgentConfig::default());
        assert!(matches!(
            core.update_content_block(id + 100, 0, b"x"),
            Err(AgentError::UnknownFile(_))
        ));
        assert!(matches!(
            core.update_content_block(id, 1000, b"x"),
            Err(AgentError::Fs(stegfs_base::FsError::OutOfBounds { .. }))
        ));
        assert!(matches!(
            core.read_file(id + 100),
            Err(AgentError::UnknownFile(_))
        ));
    }
}
