//! The concurrent volatile agent: Construction 2 served by many threads.
//!
//! [`VolatileAgent`](crate::volatile) keeps the paper's StegHide semantics —
//! zero persistent secrets, per-file keys disclosed at login, a visible
//! universe that grows and shrinks with sessions — but owns everything
//! mutably, so one thread serves everyone. This agent joins those semantics
//! with [`ConcurrentAgent`](crate::concurrent)'s lock decomposition:
//!
//! * the **block map** is a [`ShardedBlockMap`] starting all-`Unknown` at
//!   mount; relocation targets are claimed atomically so two updates cannot
//!   convert the same disclosed dummy block;
//! * **login and logout are structural**: they open/forget many files,
//!   re-classify all their blocks and mutate the registry wholesale, so they
//!   take the write side of the structural `RwLock` every per-block
//!   operation holds for read — a logout can never race a read or update of
//!   the session's own blocks;
//! * the **session table is sharded** by session id: ownership checks on
//!   different shards never contend, and a login storm distributes its
//!   bookkeeping instead of serialising on one map;
//! * per-block read-modify-writes run under the **per-shard update lock** of
//!   the block they touch, per-file header bookkeeping under a per-file
//!   lock, and the **read path is shared** (registry read lock held across
//!   the device read pins a block's location against relocation);
//! * **dummy-update victims** are drawn from the *known* universe only — the
//!   blocks of files disclosed by logged-in sessions, exactly Construction
//!   2's visibility rule. A victim that is mid-conversion (claimed as a
//!   relocation target but not yet repointed in the registry) is skipped
//!   under its shard lock rather than re-randomised, which would destroy the
//!   just-written data.
//!
//! Sessions of the same user may overlap: files are reference-counted, so a
//! file stays registered (and its blocks stay visible) until the last
//! session disclosing it logs out.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use stegfs_base::{BlockClass, FileKind, ShardedBlockMap, StegFs};
use stegfs_blockdev::{BlockDevice, BlockId};
use stegfs_crypto::{HashDrbg, Key256};

use crate::config::AgentConfig;
use crate::error::AgentError;
use crate::registry::{BlockRole, FileId, Registry};
use crate::stats::{SharedUpdateStats, UpdateStats};
use crate::update::UpdateOutcome;
use crate::volatile::{SessionId, UserCredential};

struct Session {
    user: String,
    files: Vec<FileId>,
}

/// How a dummy update must treat its victim, resolved under the victim's
/// shard lock.
enum Reseal {
    /// Decrypt under this key, refresh the IV, re-encrypt, write back.
    Key(Key256),
    /// Meaningless bytes: read (to keep the I/O signature) and re-randomise.
    Random,
    /// Mid-conversion (claimed relocation target) — touching it would
    /// destroy data that the registry does not yet attribute.
    Skip,
}

/// Lock-decomposed volatile agent (Construction 2 keying, per-session
/// registry sharding).
pub struct ConcurrentVolatileAgent<D> {
    fs: StegFs<D>,
    map: ShardedBlockMap,
    registry: RwLock<Registry>,
    /// Sessions, sharded by `session % shards`.
    sessions: Vec<RwLock<HashMap<SessionId, Session>>>,
    /// How many live sessions disclosed each registered file.
    open_counts: Mutex<HashMap<FileId, usize>>,
    /// One lock per map shard; held across every read-modify-write of a
    /// block in that shard.
    update_locks: Vec<Mutex<()>>,
    /// Read side: per-block traffic. Write side: login, logout, flush —
    /// multi-file structural operations.
    structural: RwLock<()>,
    /// Serialises updates of the same file.
    file_locks: Mutex<HashMap<FileId, Arc<Mutex<()>>>>,
    next_session: AtomicU64,
    cfg: AgentConfig,
    stats: SharedUpdateStats,
    rng: Mutex<HashDrbg>,
}

impl<D: BlockDevice> ConcurrentVolatileAgent<D> {
    /// Attach to an existing volume with zero knowledge, the production
    /// posture of Construction 2: every payload block starts out
    /// [`BlockClass::Unknown`] and the agent only ever touches blocks of
    /// files that logged-in users disclose. Provisioning is done beforehand
    /// with [`VolatileAgent`](crate::volatile::VolatileAgent).
    pub fn mount(
        device: D,
        agent_cfg: AgentConfig,
        seed: u64,
        num_shards: usize,
    ) -> Result<Self, AgentError> {
        let fs = StegFs::mount(device)?;
        let map = ShardedBlockMap::new_unknown(fs.superblock().num_blocks, num_shards);
        Ok(Self {
            fs,
            map,
            registry: RwLock::new(Registry::new()),
            sessions: (0..num_shards)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
            open_counts: Mutex::new(HashMap::new()),
            update_locks: (0..num_shards).map(|_| Mutex::new(())).collect(),
            structural: RwLock::new(()),
            file_locks: Mutex::new(HashMap::new()),
            next_session: AtomicU64::new(1),
            cfg: agent_cfg,
            stats: SharedUpdateStats::default(),
            rng: Mutex::new(HashDrbg::new(&(seed ^ 0x9e3779b9).to_be_bytes())),
        })
    }

    fn session_shard(&self, session: SessionId) -> &RwLock<HashMap<SessionId, Session>> {
        &self.sessions[(session as usize) % self.sessions.len()]
    }

    fn file_lock(&self, id: FileId) -> Arc<Mutex<()>> {
        self.file_locks
            .lock()
            .entry(id)
            .or_insert_with(|| Arc::new(Mutex::new(())))
            .clone()
    }

    /// Log a user on: open every disclosed file, add its blocks to the
    /// agent's view, and return the session id. Structural: takes the write
    /// lock, so it excludes all per-block traffic for its duration.
    pub fn login(
        &self,
        user: &str,
        credentials: &[UserCredential],
    ) -> Result<SessionId, AgentError> {
        let _exclusive = self.structural.write();
        let mut registry = self.registry.write();
        let mut counts = self.open_counts.lock();
        let mut files = Vec::with_capacity(credentials.len());
        let mut opened: Vec<FileId> = Vec::new();
        let result = (|| {
            for cred in credentials {
                let file = self.fs.open_file(&cred.fak, &cred.path)?;
                // Re-disclosure of an already-registered file (another live
                // session of the same user) reuses the id — two cached
                // headers for one physical file would diverge.
                let id = match registry.owner_of(file.header_location) {
                    Some((existing, BlockRole::Header)) => existing,
                    _ => {
                        self.fs.register_file(&mut &self.map, &file);
                        registry.register(file)
                    }
                };
                *counts.entry(id).or_insert(0) += 1;
                opened.push(id);
                files.push(id);
            }
            Ok(())
        })();
        if let Err(e) = result {
            // Roll back the files this login already opened.
            for id in opened {
                Self::release_file(&self.fs, &self.map, &mut registry, &mut counts, id);
            }
            return Err(e);
        }
        let session = self.next_session.fetch_add(1, Ordering::Relaxed);
        self.session_shard(session).write().insert(
            session,
            Session {
                user: user.to_string(),
                files,
            },
        );
        Ok(session)
    }

    /// Drop one disclosure of `id`; on the last one, persist the header and
    /// forget the file's keys and block classifications.
    fn release_file(
        fs: &StegFs<D>,
        map: &ShardedBlockMap,
        registry: &mut Registry,
        counts: &mut HashMap<FileId, usize>,
        id: FileId,
    ) {
        let remaining = match counts.get_mut(&id) {
            Some(n) => {
                *n -= 1;
                *n
            }
            None => return,
        };
        if remaining > 0 {
            return;
        }
        counts.remove(&id);
        if let Some(file) = registry.get_mut(id) {
            if file.dirty {
                // A failed header save must not leak the blocks into the
                // permanent view; the file stays reachable via its FAK.
                let _ = fs.save(file);
            }
        }
        if let Some(file) = registry.unregister(id) {
            for b in file.all_blocks() {
                map.set(b, BlockClass::Unknown);
            }
        }
    }

    /// Log a user off: persist dirty headers, then forget every file, key
    /// and block classification the session contributed (unless another live
    /// session still disclosed the same file). Structural.
    pub fn logout(&self, session: SessionId) -> Result<(), AgentError> {
        let _exclusive = self.structural.write();
        let state = self
            .session_shard(session)
            .write()
            .remove(&session)
            .ok_or(AgentError::UnknownSession(session))?;
        let mut registry = self.registry.write();
        let mut counts = self.open_counts.lock();
        for id in state.files {
            Self::release_file(&self.fs, &self.map, &mut registry, &mut counts, id);
        }
        Ok(())
    }

    /// Users currently logged in (sorted, duplicates preserved per session).
    pub fn logged_in_users(&self) -> Vec<String> {
        let mut users: Vec<String> = self
            .sessions
            .iter()
            .flat_map(|shard| {
                shard
                    .read()
                    .values()
                    .map(|s| s.user.clone())
                    .collect::<Vec<_>>()
            })
            .collect();
        users.sort();
        users
    }

    /// File ids registered by a session, in credential order.
    pub fn session_files(&self, session: SessionId) -> Result<Vec<FileId>, AgentError> {
        Ok(self
            .session_shard(session)
            .read()
            .get(&session)
            .ok_or(AgentError::UnknownSession(session))?
            .files
            .clone())
    }

    fn check_ownership(&self, session: SessionId, id: FileId) -> Result<(), AgentError> {
        let shard = self.session_shard(session).read();
        let s = shard
            .get(&session)
            .ok_or(AgentError::UnknownSession(session))?;
        if s.files.contains(&id) {
            Ok(())
        } else {
            Err(AgentError::UnknownFile(id))
        }
    }

    /// Read a whole file. The registry read lock is held across the device
    /// reads, so the result is a consistent snapshot (relocations wait).
    pub fn read_file(&self, session: SessionId, id: FileId) -> Result<Vec<u8>, AgentError> {
        let _shared = self.structural.read();
        self.check_ownership(session, id)?;
        let registry = self.registry.read();
        let file = registry.get(id).ok_or(AgentError::UnknownFile(id))?;
        Ok(self.fs.read_file(file)?)
    }

    /// Read one content block.
    pub fn read_block(
        &self,
        session: SessionId,
        id: FileId,
        index: u64,
    ) -> Result<Vec<u8>, AgentError> {
        let _shared = self.structural.read();
        self.check_ownership(session, id)?;
        let registry = self.registry.read();
        let file = registry.get(id).ok_or(AgentError::UnknownFile(id))?;
        Ok(self.fs.read_content_block(file, index)?)
    }

    /// Number of content blocks of an open file.
    pub fn num_blocks(&self, session: SessionId, id: FileId) -> Result<u64, AgentError> {
        self.check_ownership(session, id)?;
        Ok(self
            .registry
            .read()
            .get(id)
            .ok_or(AgentError::UnknownFile(id))?
            .num_content_blocks())
    }

    /// Draw one victim from the known universe.
    fn draw_known(&self) -> Option<BlockId> {
        let registry = self.registry.read();
        let mut rng = self.rng.lock();
        registry.random_known_block(&mut rng)
    }

    /// Resolve how to reseal `block`. Must be called under the block's shard
    /// update lock so the answer cannot go stale against a concurrent
    /// relocation (see [`Reseal::Skip`]).
    fn reseal_action(&self, block: BlockId) -> Reseal {
        let registry = self.registry.read();
        let Some((fid, role)) = registry.owner_of(block) else {
            // Disclosed when drawn, logged out since: structural read vs
            // write makes this unreachable, but Skip is the safe answer.
            return Reseal::Skip;
        };
        let Some(file) = registry.get(fid) else {
            return Reseal::Skip;
        };
        match role {
            BlockRole::Header | BlockRole::Indirect(_) => Reseal::Key(*file.fak.header_key()),
            BlockRole::Content(_) => match (file.header.kind, file.fak.content_key()) {
                (FileKind::Data, Some(key)) => Reseal::Key(*key),
                _ => {
                    if self.map.class(block) == BlockClass::Data {
                        // Claimed as a relocation target, not yet repointed:
                        // it may already hold fresh data sealed under a key
                        // the registry does not know yet.
                        Reseal::Skip
                    } else {
                        Reseal::Random
                    }
                }
            },
        }
    }

    /// Dummy-update `block` under its shard lock. Returns whether the block
    /// was actually touched.
    fn dummy_update_locked(&self, block: BlockId) -> Result<bool, AgentError> {
        let _shard = self.update_locks[self.map.shard_of(block)].lock();
        match self.reseal_action(block) {
            Reseal::Key(key) => {
                let codec = self.fs.codec();
                let plaintext = codec.read_sealed(self.fs.device(), block, &key)?;
                let sealed = self.fs.with_rng(|rng| codec.seal(&key, &plaintext, rng))?;
                self.fs.device().write_block(block, &sealed)?;
            }
            Reseal::Random => {
                let block_size = self.fs.codec().block_size();
                let mut scratch = vec![0u8; block_size];
                self.fs.device().read_block(block, &mut scratch)?;
                self.fs.randomize_block(block)?;
            }
            Reseal::Skip => return Ok(false),
        }
        self.stats.count_dummy_update();
        Ok(true)
    }

    /// Issue one idle-time dummy update; returns the block touched. With
    /// nobody logged in there is nothing the agent can touch
    /// ([`AgentError::NothingToUpdate`]) — the price of volatility.
    pub fn dummy_update_once(&self) -> Result<BlockId, AgentError> {
        let _shared = self.structural.read();
        loop {
            let block = self.draw_known().ok_or(AgentError::NothingToUpdate)?;
            if self.dummy_update_locked(block)? {
                return Ok(block);
            }
        }
    }

    /// Issue the configured number of idle-time dummy updates.
    pub fn tick_idle(&self) -> Result<Vec<BlockId>, AgentError> {
        let n = self.cfg.dummy_updates_per_tick;
        let mut touched = Vec::with_capacity(n as usize);
        for _ in 0..n {
            touched.push(self.dummy_update_once()?);
        }
        Ok(touched)
    }

    /// Update one content block with the Figure 6 algorithm, concurrently
    /// safe: the relocation target (a disclosed dummy-file block) is claimed
    /// atomically on the sharded map, and every block write happens under
    /// that block's shard update lock.
    pub fn update_block(
        &self,
        session: SessionId,
        id: FileId,
        index: u64,
        payload: &[u8],
    ) -> Result<UpdateOutcome, AgentError> {
        let max_payload = self.fs.content_bytes_per_block();
        if payload.len() > max_payload {
            return Err(AgentError::PayloadTooLarge {
                got: payload.len(),
                max: max_payload,
            });
        }
        let _shared = self.structural.read();
        self.check_ownership(session, id)?;
        let file_lock = self.file_lock(id);
        let _file = file_lock.lock();

        let (b1, content_key) = {
            let registry = self.registry.read();
            let file = registry.get(id).ok_or(AgentError::UnknownFile(id))?;
            let b1 = *file
                .header
                .blocks
                .get(index as usize)
                .ok_or(AgentError::Fs(stegfs_base::FsError::OutOfBounds {
                    index,
                    len: file.header.num_blocks(),
                }))?;
            let key = file
                .fak
                .content_key()
                .copied()
                .ok_or(AgentError::Fs(stegfs_base::FsError::NoContentKey))?;
            (b1, key)
        };

        if !self.cfg.relocate_on_update {
            // Ablation mode (the paper's insufficient defence).
            let _shard = self.update_locks[self.map.shard_of(b1)].lock();
            self.read_for_accounting(b1)?;
            self.write_sealed_content(b1, &content_key, payload)?;
            self.stats.count_iteration();
            self.stats.count_data_update();
            self.stats.count_in_place();
            return Ok(UpdateOutcome::InPlace { block: b1 });
        }

        for _attempt in 0..self.cfg.max_update_iterations {
            self.stats.count_iteration();
            let b2 = self.draw_known().ok_or(AgentError::NoDummyBlocks)?;

            if b2 == b1 {
                // Figure 6, first branch: update in place.
                let _shard = self.update_locks[self.map.shard_of(b1)].lock();
                self.read_for_accounting(b1)?;
                self.write_sealed_content(b1, &content_key, payload)?;
                self.stats.count_data_update();
                self.stats.count_in_place();
                return Ok(UpdateOutcome::InPlace { block: b1 });
            }

            // A viable swap target is a content block of a disclosed *dummy*
            // file (Section 4.2.2 — the user's own decoys), atomically
            // claimed so no other update converts it concurrently.
            let target = {
                let registry = self.registry.read();
                match registry.owner_of(b2) {
                    Some((fid, BlockRole::Content(idx)))
                        if registry
                            .get(fid)
                            .map(|f| f.header.kind == FileKind::Dummy)
                            .unwrap_or(false) =>
                    {
                        Some((fid, idx))
                    }
                    _ => None,
                }
            };
            if let Some((dummy_fid, dummy_idx)) = target {
                if self.map.claim(b2, BlockClass::Dummy, BlockClass::Data) {
                    // Figure 6, second branch: substitute B2 for B1. B2 is
                    // ours alone now; write it, then repoint both headers in
                    // one registry transaction, then abandon B1 into the
                    // dummy file. An I/O error before the repoint releases
                    // the claim.
                    let io = (|| {
                        {
                            let _shard = self.update_locks[self.map.shard_of(b1)].lock();
                            self.read_for_accounting(b1)?;
                        }
                        let _shard = self.update_locks[self.map.shard_of(b2)].lock();
                        self.write_sealed_content(b2, &content_key, payload)
                    })();
                    if let Err(e) = io {
                        self.map.set(b2, BlockClass::Dummy);
                        return Err(e);
                    }
                    self.registry
                        .write()
                        .swap_with_dummy(id, index, b1, dummy_fid, dummy_idx, b2);
                    self.map.set(b1, BlockClass::Dummy);
                    self.stats.count_data_update();
                    self.stats.count_relocation();
                    return Ok(UpdateOutcome::Relocated { from: b1, to: b2 });
                }
                // Claim lost to a concurrent update: B2 is mid-conversion,
                // fall through to the retry (the dummy update will skip it).
            }

            // Figure 6, third branch: B2 holds data — dummy-update it and
            // try again.
            self.dummy_update_locked(b2)?;
        }

        Err(AgentError::UpdateRetriesExhausted {
            attempts: self.cfg.max_update_iterations,
        })
    }

    fn read_for_accounting(&self, block: BlockId) -> Result<(), AgentError> {
        thread_local! {
            static SCRATCH: std::cell::RefCell<Vec<u8>> =
                const { std::cell::RefCell::new(Vec::new()) };
        }
        SCRATCH.with(|scratch| {
            let mut scratch = scratch.borrow_mut();
            scratch.resize(self.fs.codec().block_size(), 0);
            self.fs.device().read_block(block, &mut scratch)
        })?;
        self.stats.count_data_io_pair();
        Ok(())
    }

    fn write_sealed_content(
        &self,
        block: BlockId,
        key: &Key256,
        payload: &[u8],
    ) -> Result<(), AgentError> {
        // Seal under the volume DRBG lock, write with it released — the lock
        // must never span a device wait.
        let sealed = self
            .fs
            .with_rng(|rng| self.fs.codec().seal(key, payload, rng))?;
        self.fs.device().write_block(block, &sealed)?;
        Ok(())
    }

    /// Write back every dirty cached header. Structural.
    pub fn flush(&self) -> Result<(), AgentError> {
        let _exclusive = self.structural.write();
        let mut registry = self.registry.write();
        for id in registry.dirty_file_ids() {
            let file = registry.get_mut(id).ok_or(AgentError::UnknownFile(id))?;
            self.fs.save(file)?;
        }
        Ok(())
    }

    /// Update statistics collected so far.
    pub fn stats(&self) -> UpdateStats {
        self.stats.snapshot()
    }

    /// The sharded block map.
    pub fn map(&self) -> &ShardedBlockMap {
        &self.map
    }

    /// Quiesce all traffic (structural write lock — per-block ops hold the
    /// read side) and audit the map: cached per-shard counters agree with
    /// the class vectors and every block is in exactly one class. The only
    /// way to observe counter consistency while other threads are live;
    /// sampling [`ConcurrentVolatileAgent::map`] mid-flight races in-flight
    /// claim/counter pairs by design.
    pub fn audit_map_consistency(&self) -> bool {
        let _exclusive = self.structural.write();
        self.map.counters_are_consistent()
            && self.map.data_blocks()
                + self.map.dummy_blocks()
                + self.map.unknown_blocks()
                + self.map.reserved_blocks()
                == self.map.num_blocks()
    }

    /// The underlying file system.
    pub fn fs(&self) -> &StegFs<D> {
        &self.fs
    }

    /// Shard count of the map, the update-lock array and the session table.
    pub fn num_shards(&self) -> usize {
        self.update_locks.len()
    }

    /// Consume the agent and return the underlying device (simulated agent
    /// restart — all volatile knowledge is forgotten).
    pub fn into_device(self) -> D {
        self.fs.into_device()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::volatile::VolatileAgent;
    use stegfs_base::{FileAccessKey, StegFsConfig};
    use stegfs_blockdev::MemDevice;

    /// Provision a volume with two users, each owning a data and a dummy
    /// file, then mount the concurrent agent with zero knowledge.
    fn provisioned() -> (ConcurrentVolatileAgent<MemDevice>, Vec<u8>) {
        let fs_cfg = StegFsConfig::default().with_block_size(512);
        let mut setup = VolatileAgent::format(
            MemDevice::new(2048, 512),
            fs_cfg,
            AgentConfig::default(),
            21,
        )
        .unwrap();
        let per = setup.fs().content_bytes_per_block();
        let content = (0..per * 6).map(|i| (i % 251) as u8).collect::<Vec<u8>>();
        for user in ["alice", "bob"] {
            setup
                .provision_file(
                    &format!("/{user}/data"),
                    &FileAccessKey::from_passphrase(&format!("{user}-data")),
                    &content,
                )
                .unwrap();
            setup
                .provision_dummy_file(
                    &format!("/{user}/dummy"),
                    &FileAccessKey::from_passphrase(&format!("{user}-dummy")).without_content_key(),
                    8,
                )
                .unwrap();
        }
        let device = setup.into_device();
        let agent = ConcurrentVolatileAgent::mount(device, AgentConfig::default(), 77, 8).unwrap();
        (agent, content)
    }

    fn credentials(user: &str) -> Vec<UserCredential> {
        vec![
            UserCredential::new(
                format!("/{user}/data"),
                FileAccessKey::from_passphrase(&format!("{user}-data")),
            ),
            UserCredential::new(
                format!("/{user}/dummy"),
                FileAccessKey::from_passphrase(&format!("{user}-dummy")).without_content_key(),
            ),
        ]
    }

    #[test]
    fn fresh_agent_knows_nothing() {
        let (agent, _) = provisioned();
        assert_eq!(agent.map().data_blocks(), 0);
        assert!(matches!(
            agent.dummy_update_once(),
            Err(AgentError::NothingToUpdate)
        ));
    }

    #[test]
    fn login_read_update_logout_roundtrip() {
        let (agent, content) = provisioned();
        let per = agent.fs().content_bytes_per_block();
        let session = agent.login("alice", &credentials("alice")).unwrap();
        let files = agent.session_files(session).unwrap();
        assert_eq!(agent.read_file(session, files[0]).unwrap(), content);

        let new_block = vec![0xABu8; per];
        agent
            .update_block(session, files[0], 2, &new_block)
            .unwrap();
        let read = agent.read_file(session, files[0]).unwrap();
        assert_eq!(&read[2 * per..3 * per], &new_block[..]);
        assert!(agent.dummy_update_once().is_ok());
        assert!(agent.map().counters_are_consistent());

        agent.logout(session).unwrap();
        assert_eq!(agent.map().data_blocks(), 0, "view forgotten at logout");
        assert_eq!(agent.map().unknown_blocks(), agent.map().num_blocks() - 1);

        // The update survived the logout: a fresh session reads it back.
        let session2 = agent.login("alice", &credentials("alice")).unwrap();
        let files2 = agent.session_files(session2).unwrap();
        let read2 = agent.read_file(session2, files2[0]).unwrap();
        assert_eq!(&read2[2 * per..3 * per], &new_block[..]);
    }

    #[test]
    fn overlapping_sessions_refcount_shared_files() {
        let (agent, content) = provisioned();
        let s1 = agent.login("alice", &credentials("alice")).unwrap();
        let s2 = agent.login("alice", &credentials("alice")).unwrap();
        let f1 = agent.session_files(s1).unwrap();
        let f2 = agent.session_files(s2).unwrap();
        assert_eq!(f1, f2, "re-disclosure reuses ids");
        agent.logout(s1).unwrap();
        // s2 still sees everything.
        assert_eq!(agent.read_file(s2, f2[0]).unwrap(), content);
        assert!(agent.map().data_blocks() > 0);
        agent.logout(s2).unwrap();
        assert_eq!(agent.map().data_blocks(), 0);
    }

    #[test]
    fn sessions_cannot_touch_each_others_files() {
        let (agent, _) = provisioned();
        let alice = agent.login("alice", &credentials("alice")).unwrap();
        let bob = agent.login("bob", &credentials("bob")).unwrap();
        let alice_files = agent.session_files(alice).unwrap();
        assert!(matches!(
            agent.read_file(bob, alice_files[0]),
            Err(AgentError::UnknownFile(_))
        ));
        assert!(matches!(
            agent.update_block(bob, alice_files[0], 0, b"x"),
            Err(AgentError::UnknownFile(_))
        ));
        assert!(matches!(
            agent.logout(999),
            Err(AgentError::UnknownSession(999))
        ));
    }

    #[test]
    fn updates_relocate_into_the_users_dummy_blocks() {
        let (agent, _) = provisioned();
        let session = agent.login("alice", &credentials("alice")).unwrap();
        let files = agent.session_files(session).unwrap();
        let per = agent.fs().content_bytes_per_block();
        let before_data = agent.map().data_blocks();

        let mut relocations = 0;
        for i in 0..16u64 {
            let payload = vec![i as u8 + 1; per];
            if matches!(
                agent
                    .update_block(session, files[0], i % 6, &payload)
                    .unwrap(),
                UpdateOutcome::Relocated { .. }
            ) {
                relocations += 1;
            }
        }
        assert!(relocations > 0, "expected at least one relocation");
        // Swap semantics conserve classes: the dummy file keeps its size and
        // the map keeps its counts.
        assert_eq!(agent.num_blocks(session, files[1]).unwrap(), 8);
        assert_eq!(agent.map().data_blocks(), before_data);
        assert!(agent.map().counters_are_consistent());
        assert_eq!(agent.stats().data_updates, 16);
    }
}
