//! Counters describing the agent's update activity.

/// Counters collected by an agent while servicing updates and idle ticks.
///
/// The key figure of merit is [`UpdateStats::mean_iterations_per_data_update`],
/// which the paper's analysis predicts to be `E = N/D` (Section 4.1.5) — the
/// reciprocal of the dummy-block fraction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UpdateStats {
    /// Number of user-requested (data) updates serviced.
    pub data_updates: u64,
    /// Number of dummy updates issued (both idle-tick dummies and the
    /// dummy updates produced by retries inside the Figure 6 loop).
    pub dummy_updates: u64,
    /// Number of data updates that relocated the block to a new position.
    pub relocations: u64,
    /// Number of data updates that landed back on the same block (the
    /// `B2 = B1` branch of Figure 6).
    pub in_place: u64,
    /// Total block-selection iterations across all data updates.
    pub iterations: u64,
    /// Total physical block reads issued by the agent's update machinery.
    pub block_reads: u64,
    /// Total physical block writes issued by the agent's update machinery.
    pub block_writes: u64,
}

impl UpdateStats {
    /// Mean number of Figure 6 iterations per data update; the paper's
    /// expected value is `N/D`.
    pub fn mean_iterations_per_data_update(&self) -> f64 {
        if self.data_updates == 0 {
            0.0
        } else {
            self.iterations as f64 / self.data_updates as f64
        }
    }

    /// Mean number of I/Os (reads + writes) per data update. A conventional
    /// file system uses 2; the paper's expected overhead factor is therefore
    /// `mean_ios_per_data_update() / 2 = N/D`.
    pub fn mean_ios_per_data_update(&self) -> f64 {
        if self.data_updates == 0 {
            0.0
        } else {
            (self.block_reads + self.block_writes) as f64 / self.data_updates as f64
        }
    }

    /// Difference `self - earlier`, for measuring one experiment phase.
    pub fn since(&self, earlier: &UpdateStats) -> UpdateStats {
        UpdateStats {
            data_updates: self.data_updates - earlier.data_updates,
            dummy_updates: self.dummy_updates - earlier.dummy_updates,
            relocations: self.relocations - earlier.relocations,
            in_place: self.in_place - earlier.in_place,
            iterations: self.iterations - earlier.iterations,
            block_reads: self.block_reads - earlier.block_reads,
            block_writes: self.block_writes - earlier.block_writes,
        }
    }
}

/// Lock-free counterpart of [`UpdateStats`] for the concurrent agent: every
/// field is an atomic counter, so the read and update paths bump statistics
/// without sharing a lock. [`SharedUpdateStats::snapshot`] flattens into an
/// ordinary [`UpdateStats`] for reporting.
#[derive(Debug, Default)]
pub struct SharedUpdateStats {
    data_updates: AtomicU64,
    dummy_updates: AtomicU64,
    relocations: AtomicU64,
    in_place: AtomicU64,
    iterations: AtomicU64,
    block_reads: AtomicU64,
    block_writes: AtomicU64,
}

use std::sync::atomic::{AtomicU64, Ordering};

impl SharedUpdateStats {
    /// Record one serviced data update.
    pub fn count_data_update(&self) {
        self.data_updates.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one dummy update with its read+write I/O pair.
    pub fn count_dummy_update(&self) {
        self.dummy_updates.fetch_add(1, Ordering::Relaxed);
        self.block_reads.fetch_add(1, Ordering::Relaxed);
        self.block_writes.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one Figure 6 block-selection iteration.
    pub fn count_iteration(&self) {
        self.iterations.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a relocation outcome.
    pub fn count_relocation(&self) {
        self.relocations.fetch_add(1, Ordering::Relaxed);
    }

    /// Record an in-place outcome.
    pub fn count_in_place(&self) {
        self.in_place.fetch_add(1, Ordering::Relaxed);
    }

    /// Record the read+write I/O pair of a data rewrite.
    pub fn count_data_io_pair(&self) {
        self.block_reads.fetch_add(1, Ordering::Relaxed);
        self.block_writes.fetch_add(1, Ordering::Relaxed);
    }

    /// Flatten into a plain [`UpdateStats`]. Each counter is read atomically;
    /// a snapshot taken while workers run is a consistent-enough progress
    /// report, and one taken after the workers join is exact.
    pub fn snapshot(&self) -> UpdateStats {
        UpdateStats {
            data_updates: self.data_updates.load(Ordering::Relaxed),
            dummy_updates: self.dummy_updates.load(Ordering::Relaxed),
            relocations: self.relocations.load(Ordering::Relaxed),
            in_place: self.in_place.load(Ordering::Relaxed),
            iterations: self.iterations.load(Ordering::Relaxed),
            block_reads: self.block_reads.load(Ordering::Relaxed),
            block_writes: self.block_writes.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn means_handle_zero_updates() {
        let s = UpdateStats::default();
        assert_eq!(s.mean_iterations_per_data_update(), 0.0);
        assert_eq!(s.mean_ios_per_data_update(), 0.0);
    }

    #[test]
    fn means_compute_ratios() {
        let s = UpdateStats {
            data_updates: 10,
            iterations: 25,
            block_reads: 25,
            block_writes: 25,
            ..Default::default()
        };
        assert!((s.mean_iterations_per_data_update() - 2.5).abs() < 1e-9);
        assert!((s.mean_ios_per_data_update() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn shared_stats_snapshot_matches_counts() {
        let shared = SharedUpdateStats::default();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        shared.count_iteration();
                        shared.count_dummy_update();
                    }
                    shared.count_data_update();
                    shared.count_relocation();
                    shared.count_data_io_pair();
                });
            }
        });
        let snap = shared.snapshot();
        assert_eq!(snap.iterations, 400);
        assert_eq!(snap.dummy_updates, 400);
        assert_eq!(snap.data_updates, 4);
        assert_eq!(snap.relocations, 4);
        assert_eq!(snap.block_reads, 404);
        assert_eq!(snap.block_writes, 404);
    }

    #[test]
    fn since_subtracts_componentwise() {
        let a = UpdateStats {
            data_updates: 3,
            dummy_updates: 10,
            ..Default::default()
        };
        let b = UpdateStats {
            data_updates: 5,
            dummy_updates: 12,
            ..Default::default()
        };
        let d = b.since(&a);
        assert_eq!(d.data_updates, 2);
        assert_eq!(d.dummy_updates, 2);
    }
}
