//! Counters describing the agent's update activity.

/// Counters collected by an agent while servicing updates and idle ticks.
///
/// The key figure of merit is [`UpdateStats::mean_iterations_per_data_update`],
/// which the paper's analysis predicts to be `E = N/D` (Section 4.1.5) — the
/// reciprocal of the dummy-block fraction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UpdateStats {
    /// Number of user-requested (data) updates serviced.
    pub data_updates: u64,
    /// Number of dummy updates issued (both idle-tick dummies and the
    /// dummy updates produced by retries inside the Figure 6 loop).
    pub dummy_updates: u64,
    /// Number of data updates that relocated the block to a new position.
    pub relocations: u64,
    /// Number of data updates that landed back on the same block (the
    /// `B2 = B1` branch of Figure 6).
    pub in_place: u64,
    /// Total block-selection iterations across all data updates.
    pub iterations: u64,
    /// Total physical block reads issued by the agent's update machinery.
    pub block_reads: u64,
    /// Total physical block writes issued by the agent's update machinery.
    pub block_writes: u64,
}

impl UpdateStats {
    /// Mean number of Figure 6 iterations per data update; the paper's
    /// expected value is `N/D`.
    pub fn mean_iterations_per_data_update(&self) -> f64 {
        if self.data_updates == 0 {
            0.0
        } else {
            self.iterations as f64 / self.data_updates as f64
        }
    }

    /// Mean number of I/Os (reads + writes) per data update. A conventional
    /// file system uses 2; the paper's expected overhead factor is therefore
    /// `mean_ios_per_data_update() / 2 = N/D`.
    pub fn mean_ios_per_data_update(&self) -> f64 {
        if self.data_updates == 0 {
            0.0
        } else {
            (self.block_reads + self.block_writes) as f64 / self.data_updates as f64
        }
    }

    /// Difference `self - earlier`, for measuring one experiment phase.
    pub fn since(&self, earlier: &UpdateStats) -> UpdateStats {
        UpdateStats {
            data_updates: self.data_updates - earlier.data_updates,
            dummy_updates: self.dummy_updates - earlier.dummy_updates,
            relocations: self.relocations - earlier.relocations,
            in_place: self.in_place - earlier.in_place,
            iterations: self.iterations - earlier.iterations,
            block_reads: self.block_reads - earlier.block_reads,
            block_writes: self.block_writes - earlier.block_writes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn means_handle_zero_updates() {
        let s = UpdateStats::default();
        assert_eq!(s.mean_iterations_per_data_update(), 0.0);
        assert_eq!(s.mean_ios_per_data_update(), 0.0);
    }

    #[test]
    fn means_compute_ratios() {
        let s = UpdateStats {
            data_updates: 10,
            iterations: 25,
            block_reads: 25,
            block_writes: 25,
            ..Default::default()
        };
        assert!((s.mean_iterations_per_data_update() - 2.5).abs() < 1e-9);
        assert!((s.mean_ios_per_data_update() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn since_subtracts_componentwise() {
        let a = UpdateStats {
            data_updates: 3,
            dummy_updates: 10,
            ..Default::default()
        };
        let b = UpdateStats {
            data_updates: 5,
            dummy_updates: 12,
            ..Default::default()
        };
        let d = b.since(&a);
        assert_eq!(d.data_updates, 2);
        assert_eq!(d.dummy_updates, 2);
    }
}
