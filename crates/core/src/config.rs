//! Agent configuration.

/// Tunables for the StegHide agents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AgentConfig {
    /// Safety bound on the number of block-selection iterations in the
    /// Figure 6 update loop. The expected number is `N/D` (Section 4.1.5), so
    /// this bound is only hit when the volume has essentially no dummy blocks
    /// left.
    pub max_update_iterations: u32,
    /// Number of dummy updates issued per idle tick
    /// ([`crate::NonVolatileAgent::tick_idle`] /
    /// [`crate::VolatileAgent::tick_idle`]).
    pub dummy_updates_per_tick: u32,
    /// Whether real updates relocate the block (Figure 6). Disabling this
    /// keeps the dummy-update stream but rewrites data in place; it exists
    /// for the ablation experiment showing that dummy updates alone do *not*
    /// defeat update analysis (Section 4.1.4's motivation).
    pub relocate_on_update: bool,
}

impl Default for AgentConfig {
    fn default() -> Self {
        Self {
            max_update_iterations: 100_000,
            dummy_updates_per_tick: 1,
            relocate_on_update: true,
        }
    }
}

impl AgentConfig {
    /// Configuration with relocation disabled (ablation).
    pub fn without_relocation(mut self) -> Self {
        self.relocate_on_update = false;
        self
    }

    /// Override the number of dummy updates per idle tick.
    pub fn with_dummy_updates_per_tick(mut self, n: u32) -> Self {
        self.dummy_updates_per_tick = n;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_enables_relocation() {
        let cfg = AgentConfig::default();
        assert!(cfg.relocate_on_update);
        assert!(cfg.max_update_iterations > 1000);
    }

    #[test]
    fn builders_modify_fields() {
        let cfg = AgentConfig::default()
            .without_relocation()
            .with_dummy_updates_per_tick(5);
        assert!(!cfg.relocate_on_update);
        assert_eq!(cfg.dummy_updates_per_tick, 5);
    }
}
