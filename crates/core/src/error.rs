//! Agent error type.

use stegfs_base::FsError;

/// Errors produced by the StegHide agents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AgentError {
    /// Error from the underlying steganographic file system.
    Fs(FsError),
    /// The referenced open file does not exist (never opened, or closed).
    UnknownFile(u64),
    /// The referenced session does not exist (never logged in, or logged out).
    UnknownSession(u64),
    /// The Figure 6 block-selection loop exceeded the configured safety bound;
    /// indicates the volume is effectively out of dummy blocks.
    UpdateRetriesExhausted {
        /// Iterations attempted.
        attempts: u32,
    },
    /// A dummy update was requested but the agent currently knows of no block
    /// it could touch (volatile agent with no users logged in).
    NothingToUpdate,
    /// Data updates are not possible because the agent has no dummy blocks to
    /// swap with.
    NoDummyBlocks,
    /// The supplied payload does not fit in one content block.
    PayloadTooLarge {
        /// Supplied payload size in bytes.
        got: usize,
        /// Maximum content bytes per block.
        max: usize,
    },
}

impl core::fmt::Display for AgentError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AgentError::Fs(e) => write!(f, "file system error: {e}"),
            AgentError::UnknownFile(id) => write!(f, "unknown open file id {id}"),
            AgentError::UnknownSession(id) => write!(f, "unknown session id {id}"),
            AgentError::UpdateRetriesExhausted { attempts } => {
                write!(f, "update retries exhausted after {attempts} iterations")
            }
            AgentError::NothingToUpdate => write!(f, "no blocks available for dummy updates"),
            AgentError::NoDummyBlocks => write!(f, "no dummy blocks available for relocation"),
            AgentError::PayloadTooLarge { got, max } => {
                write!(
                    f,
                    "payload of {got} bytes exceeds block capacity of {max} bytes"
                )
            }
        }
    }
}

impl std::error::Error for AgentError {}

impl From<FsError> for AgentError {
    fn from(e: FsError) -> Self {
        AgentError::Fs(e)
    }
}

impl From<stegfs_blockdev::DeviceError> for AgentError {
    fn from(e: stegfs_blockdev::DeviceError) -> Self {
        AgentError::Fs(FsError::Device(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(AgentError::UnknownFile(7).to_string().contains('7'));
        assert!(AgentError::UpdateRetriesExhausted { attempts: 3 }
            .to_string()
            .contains('3'));
        let e: AgentError = FsError::NoSuchFile.into();
        assert!(e.to_string().contains("hidden file"));
    }
}
