//! Construction 1: the non-volatile agent (the paper's **StegHide\***).
//!
//! Section 4.1: the agent runs in a safe environment and owns a non-volatile
//! memory holding exactly two secrets — the volume-wide block encryption key
//! and the FAK of the dummy file. Every block on the volume is encrypted
//! under the single agent key; user file access keys only determine *where* a
//! file's header lives. Because the agent has a complete view of the volume,
//! it may select any block as a dummy-update or relocation target.

use stegfs_base::{BlockMap, FileAccessKey, StegFs, StegFsConfig};
use stegfs_blockdev::BlockDevice;
use stegfs_crypto::Key256;

use crate::config::AgentConfig;
use crate::error::AgentError;
use crate::registry::FileId;
use crate::stats::UpdateStats;
use crate::update::{AgentCore, UpdateOutcome};

/// The non-volatile agent (StegHide\*).
pub struct NonVolatileAgent<D> {
    core: AgentCore<D>,
    agent_key: Key256,
    dummy_fak: FileAccessKey,
}

impl<D: BlockDevice> NonVolatileAgent<D> {
    /// Format `device` as a fresh volume managed by this agent.
    ///
    /// `agent_key` is the secret the agent keeps in its non-volatile memory;
    /// `seed` drives all pseudo-random choices (block scattering, IVs, dummy
    /// targets) so experiments are reproducible.
    pub fn format(
        device: D,
        fs_cfg: StegFsConfig,
        agent_cfg: AgentConfig,
        agent_key: Key256,
        seed: u64,
    ) -> Result<Self, AgentError> {
        let (fs, mut map) = StegFs::format(device, fs_cfg, seed)?;
        // The paper's construction keeps a dummy file whose FAK the agent
        // holds; all abandoned blocks conceptually belong to it. We
        // materialise its header so the construction is complete, while the
        // abandoned pool itself is tracked by the block map.
        let dummy_fak = FileAccessKey::from_parts(
            agent_key.derive("steghide:dummy-file:location"),
            agent_key,
            Some(agent_key),
        );
        fs.create_dummy_file(&mut map, "/.steghide-dummy", &dummy_fak, 1)?;
        let core = AgentCore::new(fs, map, agent_cfg, seed ^ 0x5deece66d, Some(agent_key));
        Ok(Self {
            core,
            agent_key,
            dummy_fak,
        })
    }

    /// Re-attach the agent to an existing volume using its persistent secrets
    /// and the block map it saved (see [`NonVolatileAgent::export_block_map`]).
    pub fn mount(
        device: D,
        agent_cfg: AgentConfig,
        agent_key: Key256,
        block_map: BlockMap,
        seed: u64,
    ) -> Result<Self, AgentError> {
        let fs = StegFs::mount(device)?;
        let dummy_fak = FileAccessKey::from_parts(
            agent_key.derive("steghide:dummy-file:location"),
            agent_key,
            Some(agent_key),
        );
        let core = AgentCore::new(
            fs,
            block_map,
            agent_cfg,
            seed ^ 0x5deece66d,
            Some(agent_key),
        );
        Ok(Self {
            core,
            agent_key,
            dummy_fak,
        })
    }

    /// Serialize the agent's block map — the state it persists alongside its
    /// key so that a later [`NonVolatileAgent::mount`] has the complete view.
    pub fn export_block_map(&self) -> Vec<u8> {
        self.core.map.to_bytes()
    }

    /// The FAK of the agent-held dummy file.
    pub fn dummy_file_key(&self) -> &FileAccessKey {
        &self.dummy_fak
    }

    /// Effective FAK for a user file: the location comes from the user's
    /// secret and path, while header and content are encrypted under the
    /// agent's volume-wide key (Section 4.1.2: "the agent keeps two keys
    /// \[...\] the other is the secret key for encrypting all the storage
    /// blocks").
    fn effective_fak(&self, user_secret: &Key256) -> FileAccessKey {
        FileAccessKey::from_parts(
            user_secret.derive("steghide:location"),
            self.agent_key,
            Some(self.agent_key),
        )
    }

    /// Create a hidden file for a user and leave it open; returns its id.
    pub fn create_file(
        &mut self,
        user_secret: &Key256,
        path: &str,
        content: &[u8],
    ) -> Result<FileId, AgentError> {
        let fak = self.effective_fak(user_secret);
        let file = self
            .core
            .fs
            .create_file(&mut self.core.map, path, &fak, content)?;
        Ok(self.core.registry.register(file))
    }

    /// Create a hidden file of `size` bytes without writing its content
    /// blocks (benchmark set-up helper; reads and updates behave identically
    /// to a fully written file).
    pub fn create_file_sparse(
        &mut self,
        user_secret: &Key256,
        path: &str,
        size: u64,
    ) -> Result<FileId, AgentError> {
        let fak = self.effective_fak(user_secret);
        let file = self
            .core
            .fs
            .create_file_sparse(&mut self.core.map, path, &fak, size)?;
        Ok(self.core.registry.register(file))
    }

    /// Open an existing hidden file; returns its id.
    pub fn open_file(&mut self, user_secret: &Key256, path: &str) -> Result<FileId, AgentError> {
        let fak = self.effective_fak(user_secret);
        let file = self.core.fs.open_file(&fak, path)?;
        Ok(self.core.registry.register(file))
    }

    /// Save (if dirty) and close an open file.
    pub fn close_file(&mut self, id: FileId) -> Result<(), AgentError> {
        self.core.save_file(id)?;
        self.core
            .registry
            .unregister(id)
            .ok_or(AgentError::UnknownFile(id))?;
        Ok(())
    }

    /// Read a whole open file.
    pub fn read_file(&self, id: FileId) -> Result<Vec<u8>, AgentError> {
        self.core.read_file(id)
    }

    /// Read one content block of an open file.
    pub fn read_block(&self, id: FileId, index: u64) -> Result<Vec<u8>, AgentError> {
        self.core.read_content_block(id, index)
    }

    /// Number of content blocks of an open file.
    pub fn num_blocks(&self, id: FileId) -> Result<u64, AgentError> {
        Ok(self
            .core
            .registry
            .get(id)
            .ok_or(AgentError::UnknownFile(id))?
            .num_content_blocks())
    }

    /// Update one content block using the Figure 6 algorithm.
    pub fn update_block(
        &mut self,
        id: FileId,
        index: u64,
        payload: &[u8],
    ) -> Result<UpdateOutcome, AgentError> {
        self.core.update_content_block(id, index, payload)
    }

    /// Update `count` consecutive content blocks starting at `start_index`,
    /// filling each with `fill` — the paper's "update range" workload
    /// (Figure 11(b)).
    pub fn update_range_fill(
        &mut self,
        id: FileId,
        start_index: u64,
        count: u64,
        fill: u8,
    ) -> Result<Vec<UpdateOutcome>, AgentError> {
        let payload = vec![fill; self.core.fs.content_bytes_per_block()];
        let mut outcomes = Vec::with_capacity(count as usize);
        for i in start_index..start_index + count {
            outcomes.push(self.core.update_content_block(id, i, &payload)?);
        }
        Ok(outcomes)
    }

    /// Save the cached header of an open file.
    pub fn save_file(&mut self, id: FileId) -> Result<(), AgentError> {
        self.core.save_file(id)
    }

    /// Save every dirty cached header.
    pub fn flush(&mut self) -> Result<(), AgentError> {
        self.core.flush_dirty_headers()
    }

    /// Delete an open file, returning its blocks to the dummy pool.
    pub fn delete_file(&mut self, id: FileId) -> Result<(), AgentError> {
        let file = self
            .core
            .registry
            .unregister(id)
            .ok_or(AgentError::UnknownFile(id))?;
        self.core.fs.delete_file(&mut self.core.map, file)?;
        Ok(())
    }

    /// Perform the configured number of idle-time dummy updates
    /// (Section 4.1.3); returns the blocks touched.
    pub fn tick_idle(&mut self) -> Result<Vec<u64>, AgentError> {
        let n = self.core.cfg.dummy_updates_per_tick;
        let mut touched = Vec::with_capacity(n as usize);
        for _ in 0..n {
            touched.push(self.core.dummy_update_once()?);
        }
        Ok(touched)
    }

    /// Issue exactly `n` dummy updates (used by experiments that control the
    /// dummy/data mix precisely).
    pub fn dummy_updates(&mut self, n: u64) -> Result<(), AgentError> {
        for _ in 0..n {
            self.core.dummy_update_once()?;
        }
        Ok(())
    }

    /// Update statistics collected so far.
    pub fn stats(&self) -> UpdateStats {
        self.core.stats
    }

    /// Current space utilisation (`data blocks / payload blocks`).
    pub fn utilisation(&self) -> f64 {
        self.core.map.utilisation()
    }

    /// The underlying file system (for experiment plumbing).
    pub fn fs(&self) -> &StegFs<D> {
        &self.core.fs
    }

    /// The agent's block map.
    pub fn block_map(&self) -> &BlockMap {
        &self.core.map
    }

    /// Consume the agent and return the underlying device.
    pub fn into_device(self) -> D
    where
        D: Sized,
    {
        // StegFs does not expose into_inner; reconstruct via drop order is
        // not possible, so expose the device by value through the fs.
        self.core.fs.into_device()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stegfs_base::BlockClass;
    use stegfs_blockdev::MemDevice;

    fn new_agent(num_blocks: u64) -> NonVolatileAgent<MemDevice> {
        NonVolatileAgent::format(
            MemDevice::new(num_blocks, 512),
            StegFsConfig::default().with_block_size(512),
            AgentConfig::default(),
            Key256::from_passphrase("agent secret"),
            7,
        )
        .unwrap()
    }

    #[test]
    fn create_update_read_roundtrip() {
        let mut agent = new_agent(512);
        let user = Key256::from_passphrase("alice");
        let per = agent.fs().content_bytes_per_block();
        let content = vec![1u8; per * 5];
        let id = agent.create_file(&user, "/alice/db", &content).unwrap();
        assert_eq!(agent.num_blocks(id).unwrap(), 5);

        let new_block = vec![7u8; per];
        agent.update_block(id, 3, &new_block).unwrap();
        let read = agent.read_file(id).unwrap();
        assert_eq!(&read[3 * per..4 * per], &new_block[..]);
        assert_eq!(&read[..per], &content[..per]);

        // Close and reopen: relocations must have been persisted.
        agent.close_file(id).unwrap();
        let id2 = agent.open_file(&user, "/alice/db").unwrap();
        let read2 = agent.read_file(id2).unwrap();
        assert_eq!(read2, read);
    }

    #[test]
    fn mount_with_exported_map_preserves_view() {
        let mut agent = new_agent(256);
        let user = Key256::from_passphrase("bob");
        let per = agent.fs().content_bytes_per_block();
        let id = agent
            .create_file(&user, "/bob/f", &vec![9u8; per * 2])
            .unwrap();
        agent.close_file(id).unwrap();
        let map_bytes = agent.export_block_map();
        let data_blocks = agent.block_map().data_blocks();

        let device = agent.into_device();
        let map = BlockMap::from_bytes(&map_bytes).unwrap();
        let mut remounted = NonVolatileAgent::mount(
            device,
            AgentConfig::default(),
            Key256::from_passphrase("agent secret"),
            map,
            99,
        )
        .unwrap();
        assert_eq!(remounted.block_map().data_blocks(), data_blocks);
        let id = remounted.open_file(&user, "/bob/f").unwrap();
        assert_eq!(remounted.read_file(id).unwrap(), vec![9u8; per * 2]);
    }

    #[test]
    fn wrong_user_secret_cannot_open() {
        let mut agent = new_agent(256);
        let user = Key256::from_passphrase("alice");
        agent.create_file(&user, "/f", b"secret").unwrap();
        let wrong = Key256::from_passphrase("eve");
        assert!(agent.open_file(&wrong, "/f").is_err());
    }

    #[test]
    fn tick_idle_issues_dummy_updates_without_corruption() {
        let mut agent = new_agent(256);
        let user = Key256::from_passphrase("alice");
        let content = vec![3u8; 1000];
        let id = agent.create_file(&user, "/f", &content).unwrap();
        for _ in 0..50 {
            agent.tick_idle().unwrap();
        }
        assert_eq!(agent.stats().dummy_updates, 50);
        assert_eq!(agent.read_file(id).unwrap(), content);
    }

    #[test]
    fn delete_restores_dummy_pool() {
        let mut agent = new_agent(256);
        let user = Key256::from_passphrase("alice");
        let before = agent.block_map().dummy_blocks();
        let id = agent.create_file(&user, "/f", &vec![1u8; 3000]).unwrap();
        assert!(agent.block_map().dummy_blocks() < before);
        agent.delete_file(id).unwrap();
        assert_eq!(agent.block_map().dummy_blocks(), before);
        assert!(agent.read_file(id).is_err());
    }

    #[test]
    fn relocation_moves_block_to_dummy_class_target() {
        let mut agent = new_agent(1024);
        let user = Key256::from_passphrase("alice");
        let per = agent.fs().content_bytes_per_block();
        let id = agent.create_file(&user, "/f", &vec![1u8; per * 2]).unwrap();
        // Force enough updates that at least one relocation occurs.
        let mut saw_relocation = false;
        for i in 0..20u64 {
            if let UpdateOutcome::Relocated { from, to } =
                agent.update_block(id, 0, &vec![i as u8; per]).unwrap()
            {
                saw_relocation = true;
                assert_eq!(agent.block_map().class(from), BlockClass::Dummy);
                assert_eq!(agent.block_map().class(to), BlockClass::Data);
            }
        }
        assert!(saw_relocation);
    }

    #[test]
    fn utilisation_reflects_allocations() {
        let mut agent = new_agent(512);
        assert!(agent.utilisation() < 0.02);
        let user = Key256::from_passphrase("u");
        let per = agent.fs().content_bytes_per_block();
        agent
            .create_file(&user, "/f", &vec![0u8; per * 100])
            .unwrap();
        assert!(agent.utilisation() > 0.15);
    }
}
