//! The concurrent serving layer: a lock-decomposed agent that serves many
//! users' reads, updates and dummy updates from shared references.
//!
//! The sequential [`AgentCore`](crate::update) owns everything mutably, so a
//! multi-user driver can only interleave block steps cooperatively on one
//! thread. [`ConcurrentAgent`] decomposes that single borrow into independent
//! locks so the paper's construction — many users whose traffic blends into
//! one indistinguishable stream — can actually be served by many threads:
//!
//! * the **block map** is a [`ShardedBlockMap`]: reclassifications on
//!   different shards never contend, and relocation targets are claimed
//!   atomically (`claim`) so two updates cannot steal the same dummy block;
//! * every physical **read-modify-write** (dummy-update reseal, in-place
//!   rewrite, relocation write) runs under the *per-shard update lock* of the
//!   block it touches — operations on blocks in different shards proceed in
//!   parallel, while a reseal can never interleave destructively with a data
//!   write to the same block;
//! * the **read path is shared**: content reads hold only the registry
//!   *read* lock — shared among all readers, contended only by the brief
//!   header-repoint at the end of a relocation — across the device read, so
//!   a block's location is pinned while it is read (see
//!   [`ConcurrentAgent::read_block`]) and device block ops stay concurrent;
//! * **dummy updates are batched across shards**: one draw of `K` candidates
//!   under the RNG lock, grouped by shard, then exactly one update-lock
//!   acquisition per shard per round;
//! * **structural operations** (file creation, header flush) take the write
//!   side of a structural `RwLock` that all per-block traffic holds for read,
//!   because their multi-block writes go through [`StegFs`] paths that cannot
//!   take the per-shard locks themselves;
//! * statistics are atomic ([`SharedUpdateStats`]), and per-file header
//!   mutations are serialised by per-file locks.
//!
//! This agent implements the paper's Construction 1 keying (one volume-wide
//! key, the non-volatile deployment model), which is the flavour a shared
//! serving layer runs: the agent is a long-lived service with its own secret.
//! Security is unchanged — every access still lands on a uniformly selected
//! block, which the `concurrent_security` integration test verifies against
//! the statistical attackers.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use stegfs_base::{BlockClass, FileAccessKey, ShardedBlockMap, StegFs, StegFsConfig};
use stegfs_blockdev::{BlockDevice, BlockId};
use stegfs_crypto::{HashDrbg, Key256};

use crate::config::AgentConfig;
use crate::error::AgentError;
use crate::registry::{FileId, Registry};
use crate::stats::{SharedUpdateStats, UpdateStats};
use crate::update::UpdateOutcome;

/// A pluggable victim stream for dummy updates. The uniform sampler is the
/// default; a source lets maintenance work (scrub cursors, targeted refresh
/// sweeps) pick the blocks the cover traffic touches — the observable stream
/// must stay statistically indistinguishable from uniform, which the
/// integration suite checks with a KL bound.
pub trait VictimSource: Sync {
    /// The next `k` victim payload blocks. May return fewer (or out-of-range
    /// ids); the agent pads with uniform draws.
    fn next_victims(&self, k: usize) -> Vec<BlockId>;
}

/// Lock-decomposed multi-user serving agent (Construction 1 keying).
pub struct ConcurrentAgent<D> {
    fs: StegFs<D>,
    map: ShardedBlockMap,
    registry: RwLock<Registry>,
    /// One lock per map shard; held across every read-modify-write of a block
    /// in that shard.
    update_locks: Vec<Mutex<()>>,
    /// Read side: per-block traffic. Write side: multi-block structural
    /// operations (create, flush) whose writes bypass the shard locks.
    structural: RwLock<()>,
    /// Serialises updates of the same file so header bookkeeping stays
    /// consistent; never held by the read path.
    file_locks: Mutex<HashMap<FileId, Arc<Mutex<()>>>>,
    cfg: AgentConfig,
    stats: SharedUpdateStats,
    rng: Mutex<HashDrbg>,
    agent_key: Key256,
    dummy_fak: FileAccessKey,
}

impl<D: BlockDevice> ConcurrentAgent<D> {
    /// Format `device` as a fresh volume served by this agent, with the block
    /// map split over `num_shards` shards.
    pub fn format(
        device: D,
        fs_cfg: StegFsConfig,
        agent_cfg: AgentConfig,
        agent_key: Key256,
        seed: u64,
        num_shards: usize,
    ) -> Result<Self, AgentError> {
        let (fs, mut map) = StegFs::format(device, fs_cfg, seed)?;
        // Same construction as the sequential non-volatile agent: the agent
        // holds the FAK of a dummy file that conceptually owns the abandoned
        // pool.
        let dummy_fak = FileAccessKey::from_parts(
            agent_key.derive("steghide:dummy-file:location"),
            agent_key,
            Some(agent_key),
        );
        fs.create_dummy_file(&mut map, "/.steghide-dummy", &dummy_fak, 1)?;
        let map = ShardedBlockMap::from_scalar(&map, num_shards);
        let update_locks = (0..num_shards).map(|_| Mutex::new(())).collect();
        Ok(Self {
            fs,
            map,
            registry: RwLock::new(Registry::new()),
            update_locks,
            structural: RwLock::new(()),
            file_locks: Mutex::new(HashMap::new()),
            cfg: agent_cfg,
            stats: SharedUpdateStats::default(),
            rng: Mutex::new(HashDrbg::new(&(seed ^ 0x5deece66d).to_be_bytes())),
            agent_key,
            dummy_fak,
        })
    }

    fn effective_fak(&self, user_secret: &Key256) -> FileAccessKey {
        FileAccessKey::from_parts(
            user_secret.derive("steghide:location"),
            self.agent_key,
            Some(self.agent_key),
        )
    }

    fn file_lock(&self, id: FileId) -> Arc<Mutex<()>> {
        self.file_locks
            .lock()
            .entry(id)
            .or_insert_with(|| Arc::new(Mutex::new(())))
            .clone()
    }

    /// Create a hidden file for a user; returns its id. A structural
    /// operation: takes the structural write lock, so it excludes per-block
    /// traffic for its (short, rare) duration.
    pub fn create_file(
        &self,
        user_secret: &Key256,
        path: &str,
        content: &[u8],
    ) -> Result<FileId, AgentError> {
        let _exclusive = self.structural.write();
        let fak = self.effective_fak(user_secret);
        let file = self.fs.create_file(&mut &self.map, path, &fak, content)?;
        Ok(self.registry.write().register(file))
    }

    /// Create a hidden file of `size` bytes without writing its content
    /// blocks (benchmark set-up helper).
    pub fn create_file_sparse(
        &self,
        user_secret: &Key256,
        path: &str,
        size: u64,
    ) -> Result<FileId, AgentError> {
        let _exclusive = self.structural.write();
        let fak = self.effective_fak(user_secret);
        let file = self
            .fs
            .create_file_sparse(&mut &self.map, path, &fak, size)?;
        Ok(self.registry.write().register(file))
    }

    /// Open an existing hidden file; returns its id.
    ///
    /// Idempotent across sessions: if the file is already registered (same
    /// header block), the existing id is returned instead of minting a
    /// second one. Two live ids for one physical file would carry two
    /// independently cached headers — concurrent updates through them would
    /// diverge and the last flushed header would silently win, leaking the
    /// other's relocated blocks.
    ///
    /// Takes the structural read lock: opening probes header and indirect
    /// blocks on the device, which must not interleave with a concurrent
    /// create/flush's multi-block header writes.
    pub fn open_file(&self, user_secret: &Key256, path: &str) -> Result<FileId, AgentError> {
        let _shared = self.structural.read();
        let fak = self.effective_fak(user_secret);
        let file = self.fs.open_file(&fak, path)?;
        let mut registry = self.registry.write();
        if let Some((existing, crate::registry::BlockRole::Header)) =
            registry.owner_of(file.header_location)
        {
            return Ok(existing);
        }
        Ok(registry.register(file))
    }

    /// Read one content block of an open file — the shared read path.
    ///
    /// The registry **read** lock is held across the device read (readers
    /// never block each other; only the brief `registry.write()` at the end
    /// of a relocation waits). Holding it pins the location: without it, a
    /// relocation could repoint the header and abandon the old block, a
    /// second user's update could re-claim that block, and — everything
    /// being sealed under the one Construction 1 key — the stale read would
    /// decrypt *another user's* fresh content instead of failing.
    pub fn read_block(&self, id: FileId, index: u64) -> Result<Vec<u8>, AgentError> {
        let _shared = self.structural.read();
        let registry = self.registry.read();
        let file = registry.get(id).ok_or(AgentError::UnknownFile(id))?;
        let loc = *file
            .header
            .blocks
            .get(index as usize)
            .ok_or(AgentError::Fs(stegfs_base::FsError::OutOfBounds {
                index,
                len: file.header.num_blocks(),
            }))?;
        Ok(self
            .fs
            .codec()
            .read_sealed(self.fs.device(), loc, &self.agent_key)?)
    }

    /// Read a whole open file. Like [`ConcurrentAgent::read_block`], the
    /// registry read lock is held for the whole read, so the result is a
    /// consistent snapshot of the file (relocations wait; other readers and
    /// dummy updates do not).
    pub fn read_file(&self, id: FileId) -> Result<Vec<u8>, AgentError> {
        let _shared = self.structural.read();
        let registry = self.registry.read();
        let file = registry.get(id).ok_or(AgentError::UnknownFile(id))?;
        let mut out = Vec::with_capacity(file.header.file_size as usize);
        for &loc in &file.header.blocks {
            let chunk = self
                .fs
                .codec()
                .read_sealed(self.fs.device(), loc, &self.agent_key)?;
            out.extend_from_slice(&chunk);
        }
        out.truncate(file.header.file_size as usize);
        Ok(out)
    }

    /// Number of content blocks of an open file.
    pub fn num_blocks(&self, id: FileId) -> Result<u64, AgentError> {
        Ok(self
            .registry
            .read()
            .get(id)
            .ok_or(AgentError::UnknownFile(id))?
            .num_content_blocks())
    }

    fn content_location(&self, id: FileId, index: u64) -> Result<BlockId, AgentError> {
        let registry = self.registry.read();
        let file = registry.get(id).ok_or(AgentError::UnknownFile(id))?;
        file.header
            .blocks
            .get(index as usize)
            .copied()
            .ok_or(AgentError::Fs(stegfs_base::FsError::OutOfBounds {
                index,
                len: file.header.num_blocks(),
            }))
    }

    /// Reseal `block` under the shard update lock — the unit dummy update.
    /// The caller must already hold the structural read lock.
    fn dummy_update_locked(&self, block: BlockId) -> Result<(), AgentError> {
        let _shard = self.update_locks[self.map.shard_of(block)].lock();
        self.reseal_shard_locked(block)
    }

    /// Issue one idle-time dummy update; returns the block touched.
    pub fn dummy_update_once(&self) -> Result<u64, AgentError> {
        Ok(self.dummy_update_batch(1)?[0])
    }

    /// Uniformly draw `k` candidate payload blocks under a single
    /// acquisition of the agent's selection RNG.
    fn draw_candidates(&self, k: usize) -> Vec<u64> {
        let payload = self.fs.superblock().payload_blocks();
        let mut rng = self.rng.lock();
        (0..k).map(|_| 1 + rng.gen_range(payload)).collect()
    }

    /// Draw one candidate without the `Vec` round trip — the Figure 6 loop
    /// runs this once per iteration.
    fn draw_candidate(&self) -> u64 {
        let payload = self.fs.superblock().payload_blocks();
        1 + self.rng.lock().gen_range(payload)
    }

    /// Dummy-update `block` in place: read + decrypt lock-free, then seal
    /// the identical plaintext under a fresh IV (the volume DRBG lock covers
    /// only the seal, never the device I/O — otherwise every writer on every
    /// shard would serialise behind one mutex for the duration of a device
    /// wait). Caller must hold the block's shard update lock.
    fn reseal_shard_locked(&self, block: BlockId) -> Result<(), AgentError> {
        let codec = self.fs.codec();
        let plaintext = codec.read_sealed(self.fs.device(), block, &self.agent_key)?;
        let sealed = self
            .fs
            .with_rng(|rng| codec.seal(&self.agent_key, &plaintext, rng))?;
        self.fs.device().write_block(block, &sealed)?;
        self.stats.count_dummy_update();
        Ok(())
    }

    /// Issue `k` dummy updates with cross-shard batched selection: all `k`
    /// candidates are drawn under one RNG lock acquisition, grouped by shard,
    /// and each shard's update lock is taken exactly once for its whole
    /// group. Returns the touched blocks in selection order.
    pub fn dummy_update_batch(&self, k: usize) -> Result<Vec<u64>, AgentError> {
        let candidates = self.draw_candidates(k);
        self.dummy_update_candidates(candidates)
    }

    /// Issue `k` dummy updates drawing the victims from `source` instead of
    /// the uniform sampler — the hook that lets maintenance sweeps (e.g. a
    /// scrub cursor) ride the cover-traffic stream. Out-of-range victims and
    /// any shortfall below `k` are replaced by uniform draws, so a
    /// misbehaving source degrades to ordinary cover traffic rather than
    /// skewing or starving it.
    pub fn dummy_update_batch_from(
        &self,
        k: usize,
        source: &dyn VictimSource,
    ) -> Result<Vec<u64>, AgentError> {
        let payload = self.fs.superblock().payload_blocks();
        let mut candidates: Vec<u64> = source
            .next_victims(k)
            .into_iter()
            .filter(|&b| b >= 1 && b <= payload)
            .take(k)
            .collect();
        while candidates.len() < k {
            candidates.push(self.draw_candidate());
        }
        self.dummy_update_candidates(candidates)
    }

    fn dummy_update_candidates(&self, candidates: Vec<u64>) -> Result<Vec<u64>, AgentError> {
        let _shared = self.structural.read();
        let mut by_shard: Vec<Vec<u64>> = vec![Vec::new(); self.update_locks.len()];
        for &block in &candidates {
            by_shard[self.map.shard_of(block)].push(block);
        }
        for (shard, blocks) in by_shard.iter().enumerate() {
            if blocks.is_empty() {
                continue;
            }
            let _lock = self.update_locks[shard].lock();
            for &block in blocks {
                self.reseal_shard_locked(block)?;
            }
        }
        Ok(candidates)
    }

    /// Update one content block with the Figure 6 algorithm, concurrently
    /// safe: the relocation target is claimed atomically on the sharded map,
    /// and every block write happens under that block's shard update lock.
    pub fn update_block(
        &self,
        id: FileId,
        index: u64,
        payload: &[u8],
    ) -> Result<UpdateOutcome, AgentError> {
        let max_payload = self.fs.content_bytes_per_block();
        if payload.len() > max_payload {
            return Err(AgentError::PayloadTooLarge {
                got: payload.len(),
                max: max_payload,
            });
        }
        let _shared = self.structural.read();
        let file_lock = self.file_lock(id);
        let _file = file_lock.lock();

        let b1 = self.content_location(id, index)?;

        if !self.cfg.relocate_on_update {
            // Ablation mode (the paper's insufficient defence): dummy-update
            // stream only, data rewritten in place.
            let _shard = self.update_locks[self.map.shard_of(b1)].lock();
            self.read_for_accounting(b1)?;
            self.write_sealed_content(b1, payload)?;
            self.stats.count_iteration();
            self.stats.count_data_update();
            self.stats.count_in_place();
            return Ok(UpdateOutcome::InPlace { block: b1 });
        }

        for _attempt in 0..self.cfg.max_update_iterations {
            self.stats.count_iteration();
            let b2 = self.draw_candidate();

            if b2 == b1 {
                // Figure 6, first branch: update in place.
                let _shard = self.update_locks[self.map.shard_of(b1)].lock();
                self.read_for_accounting(b1)?;
                self.write_sealed_content(b1, payload)?;
                self.stats.count_data_update();
                self.stats.count_in_place();
                return Ok(UpdateOutcome::InPlace { block: b1 });
            }

            if self.map.claim(b2, BlockClass::Dummy, BlockClass::Data) {
                // Figure 6, second branch: substitute B2 for B1. B2 is ours
                // alone now (the claim was atomic), so write it, repoint the
                // header, then abandon B1. An I/O error before the header
                // repoint must release the claim, or B2 would stay classified
                // Data with no header referencing it — a permanent dummy-pool
                // leak.
                let io = (|| {
                    {
                        let _shard = self.update_locks[self.map.shard_of(b1)].lock();
                        self.read_for_accounting(b1)?;
                    }
                    let _shard = self.update_locks[self.map.shard_of(b2)].lock();
                    self.write_sealed_content(b2, payload)
                })();
                if let Err(e) = io {
                    self.map.set(b2, BlockClass::Dummy);
                    return Err(e);
                }
                self.registry
                    .write()
                    .relocate_content_block(id, index, b1, b2);
                self.map.set(b1, BlockClass::Dummy);
                self.stats.count_data_update();
                self.stats.count_relocation();
                return Ok(UpdateOutcome::Relocated { from: b1, to: b2 });
            }

            // Figure 6, third branch: B2 holds data — dummy-update it and try
            // again.
            self.dummy_update_locked(b2)?;
        }

        Err(AgentError::UpdateRetriesExhausted {
            attempts: self.cfg.max_update_iterations,
        })
    }

    fn read_for_accounting(&self, block: BlockId) -> Result<(), AgentError> {
        // Per-thread scratch: the Figure 6 loop must not allocate a block
        // buffer per iteration (same rationale as the sequential core's
        // scratch field, which a shared `&self` cannot reuse without a lock).
        thread_local! {
            static SCRATCH: std::cell::RefCell<Vec<u8>> =
                const { std::cell::RefCell::new(Vec::new()) };
        }
        SCRATCH.with(|scratch| {
            let mut scratch = scratch.borrow_mut();
            scratch.resize(self.fs.codec().block_size(), 0);
            self.fs.device().read_block(block, &mut scratch)
        })?;
        self.stats.count_data_io_pair();
        Ok(())
    }

    fn write_sealed_content(&self, block: BlockId, payload: &[u8]) -> Result<(), AgentError> {
        // Seal under the volume DRBG lock, write with it released — the lock
        // must never span a device wait (see `reseal_shard_locked`).
        let sealed = self
            .fs
            .with_rng(|rng| self.fs.codec().seal(&self.agent_key, payload, rng))?;
        self.fs.device().write_block(block, &sealed)?;
        Ok(())
    }

    /// Write back every dirty cached header. A structural operation (header
    /// and indirect writes bypass the shard locks).
    pub fn flush(&self) -> Result<(), AgentError> {
        let _exclusive = self.structural.write();
        let mut registry = self.registry.write();
        for id in registry.dirty_file_ids() {
            let file = registry.get_mut(id).ok_or(AgentError::UnknownFile(id))?;
            self.fs.save(file)?;
        }
        Ok(())
    }

    /// Update statistics collected so far.
    pub fn stats(&self) -> UpdateStats {
        self.stats.snapshot()
    }

    /// Current space utilisation.
    pub fn utilisation(&self) -> f64 {
        self.map.utilisation()
    }

    /// The sharded block map.
    pub fn map(&self) -> &ShardedBlockMap {
        &self.map
    }

    /// The underlying file system.
    pub fn fs(&self) -> &StegFs<D> {
        &self.fs
    }

    /// Shard count of the map and the update-lock array.
    pub fn num_shards(&self) -> usize {
        self.update_locks.len()
    }

    /// The FAK of the agent-held dummy file.
    pub fn dummy_file_key(&self) -> &FileAccessKey {
        &self.dummy_fak
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stegfs_blockdev::MemDevice;

    fn agent(num_blocks: u64, shards: usize) -> ConcurrentAgent<MemDevice> {
        ConcurrentAgent::format(
            MemDevice::new(num_blocks, 512),
            StegFsConfig::default().with_block_size(512),
            AgentConfig::default(),
            Key256::from_passphrase("concurrent agent secret"),
            7,
            shards,
        )
        .unwrap()
    }

    #[test]
    fn create_update_read_roundtrip() {
        let agent = agent(512, 8);
        let user = Key256::from_passphrase("alice");
        let per = agent.fs().content_bytes_per_block();
        let content = vec![1u8; per * 5];
        let id = agent.create_file(&user, "/alice/db", &content).unwrap();
        assert_eq!(agent.num_blocks(id).unwrap(), 5);

        let new_block = vec![7u8; per];
        agent.update_block(id, 3, &new_block).unwrap();
        let read = agent.read_file(id).unwrap();
        assert_eq!(&read[3 * per..4 * per], &new_block[..]);
        assert_eq!(&read[..per], &content[..per]);
        assert_eq!(agent.read_block(id, 3).unwrap()[..per], new_block[..]);

        // Close the loop through a flush and a fresh open.
        agent.flush().unwrap();
        let id2 = agent.open_file(&user, "/alice/db").unwrap();
        assert_eq!(agent.read_file(id2).unwrap(), read);
    }

    #[test]
    fn dummy_batch_takes_each_shard_lock_once_and_counts() {
        let agent = agent(256, 4);
        let touched = agent.dummy_update_batch(64).unwrap();
        assert_eq!(touched.len(), 64);
        assert!(touched.iter().all(|&b| (1..256).contains(&b)));
        let stats = agent.stats();
        assert_eq!(stats.dummy_updates, 64);
        assert_eq!(stats.block_reads, 64);
        assert_eq!(stats.block_writes, 64);
    }

    #[test]
    fn dummy_updates_do_not_corrupt_data() {
        let agent = agent(256, 8);
        let user = Key256::from_passphrase("bob");
        let per = agent.fs().content_bytes_per_block();
        let content = vec![0x42u8; per * 4];
        let id = agent.create_file(&user, "/bob/f", &content).unwrap();
        for _ in 0..20 {
            agent.dummy_update_batch(10).unwrap();
        }
        assert_eq!(agent.read_file(id).unwrap(), content);
        assert_eq!(agent.stats().dummy_updates, 200);
    }

    #[test]
    fn concurrent_updates_and_reads_preserve_every_file() {
        let agent = agent(1024, 8);
        let per = agent.fs().content_bytes_per_block();
        let users = 4usize;
        let ids: Vec<FileId> = (0..users)
            .map(|u| {
                let secret = Key256::from_passphrase(&format!("user-{u}"));
                agent
                    .create_file(&secret, &format!("/u{u}"), &vec![u as u8; per * 4])
                    .unwrap()
            })
            .collect();

        std::thread::scope(|s| {
            for (u, &id) in ids.iter().enumerate() {
                let agent = &agent;
                s.spawn(move || {
                    for round in 0..8u64 {
                        let fill = (u as u8) ^ (round as u8) | 0x80;
                        agent.update_block(id, round % 4, &vec![fill; per]).unwrap();
                        agent.read_block(id, round % 4).unwrap();
                    }
                });
            }
            let agent = &agent;
            s.spawn(move || {
                for _ in 0..16 {
                    agent.dummy_update_batch(8).unwrap();
                }
            });
        });

        // Every file still reads back: position (round % 4) holds the last
        // fill its owner wrote.
        for (u, &id) in ids.iter().enumerate() {
            let read = agent.read_file(id).unwrap();
            let expected_last = (u as u8) ^ 7u8 | 0x80;
            assert_eq!(read[3 * per], expected_last, "user {u} block 3");
        }
        let stats = agent.stats();
        assert_eq!(stats.data_updates, users as u64 * 8);
        assert_eq!(
            stats.dummy_updates,
            128 + stats.iterations - stats.data_updates
        );
        assert!(agent.map().counters_are_consistent());
    }

    #[test]
    fn relocation_reclassifies_and_conserves_blocks() {
        let agent = agent(1024, 8);
        let user = Key256::from_passphrase("carol");
        let per = agent.fs().content_bytes_per_block();
        let id = agent.create_file(&user, "/c", &vec![1u8; per * 2]).unwrap();
        let before_data = agent.map().data_blocks();

        let mut relocated = false;
        for i in 0..20u64 {
            match agent.update_block(id, 0, &vec![i as u8; per]).unwrap() {
                UpdateOutcome::Relocated { from, to } => {
                    relocated = true;
                    assert_eq!(agent.map().class(from), BlockClass::Dummy);
                    assert_eq!(agent.map().class(to), BlockClass::Data);
                }
                UpdateOutcome::InPlace { .. } => {}
            }
        }
        assert!(relocated, "expected at least one relocation in 20 updates");
        // Relocation swaps classifications one for one.
        assert_eq!(agent.map().data_blocks(), before_data);
        assert!(agent.map().counters_are_consistent());
    }

    #[test]
    fn reopening_a_file_returns_the_same_id() {
        // Two sessions opening the same physical file must share one cached
        // header (and therefore one per-file update lock); a second id would
        // let concurrent updates diverge and the last flushed header win.
        let agent = agent(512, 8);
        let user = Key256::from_passphrase("erin");
        let per = agent.fs().content_bytes_per_block();
        let id = agent.create_file(&user, "/e", &vec![3u8; per * 2]).unwrap();
        agent.flush().unwrap();
        assert_eq!(agent.open_file(&user, "/e").unwrap(), id);
        assert_eq!(agent.open_file(&user, "/e").unwrap(), id);
        // Updates through the reopened handle land in the one shared header.
        agent.update_block(id, 1, &vec![9u8; per]).unwrap();
        assert_eq!(agent.read_block(id, 1).unwrap()[..per], vec![9u8; per][..]);
    }

    #[test]
    fn unknown_file_and_oversized_payload_error() {
        let agent = agent(256, 4);
        assert!(matches!(
            agent.read_file(999),
            Err(AgentError::UnknownFile(999))
        ));
        let user = Key256::from_passphrase("dan");
        let per = agent.fs().content_bytes_per_block();
        let id = agent.create_file(&user, "/d", &vec![0u8; per]).unwrap();
        assert!(matches!(
            agent.update_block(id, 0, &vec![0u8; per + 1]),
            Err(AgentError::PayloadTooLarge { .. })
        ));
        assert!(matches!(
            agent.update_block(id, 99, &vec![0u8; per]),
            Err(AgentError::Fs(stegfs_base::FsError::OutOfBounds { .. }))
        ));
    }
}
