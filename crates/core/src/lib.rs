//! # steghide
//!
//! The paper's primary contribution, part 1 (Section 4): an *agent* that sits
//! between users and the raw shared storage and hides data **updates** from an
//! attacker who can diff storage snapshots (update analysis).
//!
//! Two cooperating ideas make the update stream indistinguishable from noise:
//!
//! 1. **Dummy updates** (Section 4.1.3). Whenever the system is idle the agent
//!    re-encrypts randomly chosen blocks under fresh IVs. The ciphertext of the
//!    whole block changes while the plaintext does not, so an attacker cannot
//!    tell a dummy update from a real one.
//! 2. **Relocation on update** (Section 4.1.4, Figure 6). A real update never
//!    rewrites a block in place; the updated logical block moves to a
//!    uniformly random physical block (swapping places with a dummy block).
//!    Real updates therefore hit uniformly random locations — exactly the
//!    distribution of the dummy updates — which is the paper's *perfect
//!    security* argument (Section 4.1.4) under Definition 1.
//!
//! Two constructions are provided, matching the paper:
//!
//! * [`NonVolatileAgent`] (the paper's **StegHide\***, Construction 1): the
//!   agent persistently holds one volume-wide encryption key plus the dummy
//!   file's access key, giving it a complete view of the volume at all times.
//! * [`VolatileAgent`] (the paper's **StegHide**, Construction 2): the agent
//!   keeps *no* persistent secrets. Users hold the FAKs of their hidden files
//!   *and* of their own dummy files and disclose them only at login; the
//!   agent's view — and therefore the region of the disk it touches — grows
//!   as users log in and is forgotten when the agent restarts.
//!
//! The agents drive the [`stegfs_base::StegFs`] substrate; read-traffic hiding
//! is provided separately by the `stegfs-oblivious` crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod concurrent;
mod config;
mod error;
mod nonvolatile;
mod registry;
mod stats;
mod update;
mod volatile;
mod volatile_concurrent;

pub use concurrent::{ConcurrentAgent, VictimSource};
pub use config::AgentConfig;
pub use error::AgentError;
pub use nonvolatile::NonVolatileAgent;
pub use registry::{BlockRole, FileId, Registry};
pub use stats::{SharedUpdateStats, UpdateStats};
pub use update::UpdateOutcome;
pub use volatile::{SessionId, UserCredential, VolatileAgent};
pub use volatile_concurrent::ConcurrentVolatileAgent;
